// End-to-end tests of the MaxPool forward kernels on the simulated device,
// validated bit-exactly against the reference (integer-valued fp16 data
// makes every implementation's arithmetic exact).
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::maxpool_forward;

constexpr PoolImpl kAllImpls[] = {PoolImpl::kDirect, PoolImpl::kIm2col,
                                  PoolImpl::kExpansion, PoolImpl::kXYSplit};

void check_all_impls(const TensorF16& in, const Window2d& w) {
  Device dev;
  const TensorF16 want = ref::maxpool_fwd(in, w);
  for (PoolImpl impl : kAllImpls) {
    auto got = maxpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
    EXPECT_GT(got.cycles(), 0);
  }
}

TEST(MaxpoolForward, SmallStride2) {
  check_all_impls(testutil::random_int_nc1hwc0(1, 1, 9, 9, 101),
                  Window2d::pool(3, 2));
}

TEST(MaxpoolForward, Stride1) {
  check_all_impls(testutil::random_int_nc1hwc0(1, 1, 10, 10, 102),
                  Window2d::pool(3, 1));
}

TEST(MaxpoolForward, Stride3NoOverlap) {
  check_all_impls(testutil::random_int_nc1hwc0(1, 1, 12, 12, 103),
                  Window2d::pool(3, 3));
}

TEST(MaxpoolForward, Kernel2Stride2VGGStyle) {
  check_all_impls(testutil::random_int_nc1hwc0(1, 1, 16, 16, 104),
                  Window2d::pool(2, 2));
}

TEST(MaxpoolForward, AsymmetricKernelAndStride) {
  Window2d w;
  w.kh = 2;
  w.kw = 4;
  w.sh = 3;
  w.sw = 2;
  check_all_impls(testutil::random_int_nc1hwc0(1, 1, 11, 14, 105), w);
}

TEST(MaxpoolForward, NonSquareInput) {
  check_all_impls(testutil::random_int_nc1hwc0(1, 1, 7, 19, 106),
                  Window2d::pool(3, 2));
}

TEST(MaxpoolForward, MultiChannelC1) {
  check_all_impls(testutil::random_int_nc1hwc0(1, 4, 9, 9, 107),
                  Window2d::pool(3, 2));
}

TEST(MaxpoolForward, BatchedN2) {
  check_all_impls(testutil::random_int_nc1hwc0(2, 2, 9, 9, 108),
                  Window2d::pool(3, 2));
}

TEST(MaxpoolForward, LargeInputRequiresTiling) {
  // (147, 147): forces H-tiling in every implementation.
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 147, 147, 109);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 want = ref::maxpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col}) {
    auto got = maxpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
  }
}

TEST(MaxpoolForward, Im2colSupportsPadding) {
  Device dev;
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 11, 11, 110);
  const TensorF16 want = ref::maxpool_fwd(in, w);
  auto got = maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  testutil::expect_equal_f16(got.out, want, "im2col padded");
}

TEST(MaxpoolForward, PaddedAndTiled) {
  Device dev;
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = 1;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 145, 145, 111);
  const TensorF16 want = ref::maxpool_fwd(in, w);
  auto got = maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  testutil::expect_equal_f16(got.out, want, "im2col padded tiled");
}

TEST(MaxpoolForward, DirectRejectsPadding) {
  Device dev;
  Window2d w = Window2d::pool(3, 2);
  w.pt = 1;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 112);
  EXPECT_THROW(maxpool_forward(dev, in, w, PoolImpl::kDirect), Error);
  EXPECT_THROW(maxpool_forward(dev, in, w, PoolImpl::kExpansion), Error);
  EXPECT_THROW(maxpool_forward(dev, in, w, PoolImpl::kXYSplit), Error);
}

TEST(MaxpoolForward, FloatDataAlsoExact) {
  // max is exact in fp16 even on arbitrary values.
  Device dev;
  const TensorF16 in = testutil::random_float_nc1hwc0(1, 2, 13, 13, 113);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 want = ref::maxpool_fwd(in, w);
  for (PoolImpl impl : kAllImpls) {
    auto got = maxpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
  }
}

TEST(MaxpoolForward, Im2colBeatsDirectAtStride2) {
  // The paper's core claim (Figure 7a / 8b): with overlap and a strided
  // layout, the Im2Col-based kernel wins.
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 35, 35, 114);
  const Window2d w = Window2d::pool(3, 2);
  auto direct = maxpool_forward(dev, in, w, PoolImpl::kDirect);
  auto im2col = maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  EXPECT_LT(im2col.cycles(), direct.cycles());
}

TEST(MaxpoolForward, DirectWinsAtStride1) {
  // Figure 8a: at stride (1,1) the direct lowering saturates the mask and
  // pays no transformation, so it is fastest.
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 27, 27, 115);
  const Window2d w = Window2d::pool(3, 1);
  auto direct = maxpool_forward(dev, in, w, PoolImpl::kDirect);
  auto im2col = maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  auto expansion = maxpool_forward(dev, in, w, PoolImpl::kExpansion);
  EXPECT_LT(direct.cycles(), im2col.cycles());
  EXPECT_LT(direct.cycles(), expansion.cycles());
}

TEST(MaxpoolForward, LaneUtilizationExplainsTheWin) {
  // The mechanism the paper describes: the direct kernel activates only
  // C0 = 16 of 128 lanes; the im2col kernel saturates the mask.
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 33, 33, 116);
  const Window2d w = Window2d::pool(3, 2);
  auto direct = maxpool_forward(dev, in, w, PoolImpl::kDirect);
  auto im2col = maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  EXPECT_LT(direct.run.aggregate.lane_utilization(), 0.3);
  EXPECT_GT(im2col.run.aggregate.lane_utilization(), 0.9);
  // And the instruction count collapses from ~Oh*Ow*Kh to ~Kh*Kw.
  EXPECT_GT(direct.run.aggregate.vector_instrs,
            10 * im2col.run.aggregate.vector_instrs);
}

TEST(MaxpoolForward, C1ParallelizesAcrossCores) {
  Device dev;
  const TensorF16 in1 = testutil::random_int_nc1hwc0(1, 1, 21, 21, 117);
  const TensorF16 in8 = testutil::random_int_nc1hwc0(1, 8, 21, 21, 117);
  const Window2d w = Window2d::pool(3, 2);
  auto r1 = maxpool_forward(dev, in1, w, PoolImpl::kIm2col);
  auto r8 = maxpool_forward(dev, in8, w, PoolImpl::kIm2col);
  // 8 slices on 8 cores: device time grows far less than 8x.
  EXPECT_LT(r8.cycles(), 2 * r1.cycles());
  EXPECT_EQ(r8.run.cores_used, 8);
}

TEST(MaxpoolForward, RejectsNonFractalInput) {
  Device dev;
  TensorF16 bad(Shape{4, 4});
  EXPECT_THROW(maxpool_forward(dev, bad, Window2d::pool(2, 2),
                               PoolImpl::kDirect),
               Error);
}

}  // namespace
}  // namespace davinci
