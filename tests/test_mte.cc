// Unit tests for the Memory Transfer Engine: legal datapaths, strided
// copies, converting copies, and cycle charging.
#include "sim/mte.h"

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "common/check.h"
#include "sim/scratch.h"

namespace davinci {
namespace {

class MteTest : public ::testing::Test {
 protected:
  MteTest()
      : ub_(BufferKind::kUnified, 64 * 1024),
        l1_(BufferKind::kL1, 64 * 1024),
        l0a_(BufferKind::kL0A, 64 * 1024),
        l0c_(BufferKind::kL0C, 64 * 1024),
        mte_(cost_, &stats_) {}

  CostModel cost_;
  CycleStats stats_;
  ScratchBuffer ub_, l1_, l0a_, l0c_;
  Mte mte_;
};

TEST_F(MteTest, GmToUbCopy) {
  std::vector<Float16> host(64);
  for (int i = 0; i < 64; ++i) host[static_cast<size_t>(i)] = Float16(float(i));
  auto dst = ub_.alloc<Float16>(64);
  mte_.copy(dst, gm_span(host.data(), 64), 64);
  EXPECT_EQ(dst.at(0).to_float(), 0.0f);
  EXPECT_EQ(dst.at(63).to_float(), 63.0f);
  EXPECT_EQ(stats_.mte_transfers, 1);
  EXPECT_EQ(stats_.mte_bytes, 128);
  EXPECT_EQ(stats_.mte_cycles, cost_.mte_copy(128, 1));
}

TEST_F(MteTest, AllLegalPaths) {
  std::vector<Float16> host(16, Float16(1.0f));
  auto gm = gm_span(host.data(), 16);
  auto ub = ub_.alloc<Float16>(16);
  auto l1 = l1_.alloc<Float16>(16);
  auto l0a = l0a_.alloc<Float16>(16);
  mte_.copy(l1, gm, 16);     // GM -> L1
  mte_.copy(ub, gm, 16);     // GM -> UB
  mte_.copy(ub, l1, 16);     // L1 -> UB
  mte_.copy(l1, ub, 16);     // UB -> L1
  mte_.copy(l0a, l1, 16);    // L1 -> L0A
  mte_.copy(gm, ub, 16);     // UB -> GM
  mte_.copy(gm, l1, 16);     // L1 -> GM
  EXPECT_EQ(stats_.mte_transfers, 7);
}

TEST_F(MteTest, IllegalPathsRejected) {
  std::vector<Float16> host(16);
  auto gm = gm_span(host.data(), 16);
  auto l0a = l0a_.alloc<Float16>(16);
  auto ub = ub_.alloc<Float16>(16);
  EXPECT_THROW(mte_.copy(l0a, gm, 16), Error);   // GM -> L0A: must go via L1
  EXPECT_THROW(mte_.copy(ub, l0a, 16), Error);   // L0A is Cube-only
  EXPECT_THROW(mte_.copy(gm, gm, 16), Error);    // GM -> GM
}

TEST_F(MteTest, CopyCountBounds) {
  std::vector<Float16> host(8);
  auto ub = ub_.alloc<Float16>(4);
  EXPECT_THROW(mte_.copy(ub, gm_span(host.data(), 8), 8), Error);
}

TEST_F(MteTest, StridedCopy2d) {
  // Gather 3 rows of 4 elements from a stride-8 source.
  std::vector<Float16> host(24);
  for (int i = 0; i < 24; ++i) host[static_cast<size_t>(i)] = Float16(float(i));
  auto dst = ub_.alloc<Float16>(12);
  mte_.copy_2d(dst, 4, gm_span(host.data(), 24), 8, 3, 4);
  EXPECT_EQ(dst.at(0).to_float(), 0.0f);
  EXPECT_EQ(dst.at(4).to_float(), 8.0f);
  EXPECT_EQ(dst.at(11).to_float(), 19.0f);
  EXPECT_EQ(stats_.mte_cycles, cost_.mte_copy(24, 3));
}

TEST_F(MteTest, Copy2dScatter) {
  std::vector<Float16> host(24, Float16(0.0f));
  auto src = ub_.alloc<Float16>(12);
  for (int i = 0; i < 12; ++i) src.at(i) = Float16(float(i + 1));
  mte_.copy_2d(gm_span(host.data(), 24), 8, src, 4, 3, 4);
  EXPECT_EQ(host[0].to_float(), 1.0f);
  EXPECT_EQ(host[8].to_float(), 5.0f);
  EXPECT_EQ(host[4].to_float(), 0.0f);  // gap untouched
}

TEST_F(MteTest, ConvertingCopyL0cToUb) {
  auto src = l0c_.alloc<float>(16);
  for (int i = 0; i < 16; ++i) src.at(i) = 1.5f * static_cast<float>(i);
  auto dst = ub_.alloc<Float16>(16);
  mte_.copy_convert(dst, src, 16);
  EXPECT_EQ(dst.at(2).to_float(), 3.0f);
  EXPECT_EQ(dst.at(15).to_float(), 22.5f);
}

TEST_F(MteTest, ConvertingCopyRejectsWrongBuffers) {
  auto f32ub = l0c_.alloc<float>(4);
  auto f16l1 = l1_.alloc<Float16>(4);
  EXPECT_THROW(mte_.copy_convert(f16l1, f32ub, 4), Error);
}

TEST_F(MteTest, BandwidthTermScalesWithBytes) {
  std::vector<Float16> host(8192);
  auto dst = ub_.alloc<Float16>(8192);
  mte_.copy(dst, gm_span(host.data(), 8192), 8192);
  // 16384 bytes at 128 B/cycle = 128 cycles + startup + 1 burst.
  EXPECT_EQ(stats_.mte_cycles,
            cost_.mte_startup_cycles + 128 + cost_.mte_burst_cycles);
}

}  // namespace
}  // namespace davinci
