// Chaos soak, test-sized: trace replay through serve::Session under a
// seeded fault matrix (the bench/bench_serve_chaos harness shrunk to
// TSan-friendly geometries). The robustness contract under test:
//
//   * every submitted future resolves -- value or exception, no hangs;
//   * every successful response is bit-identical to a fault-free run of
//     the same request (silent-fault mixes run with verification on);
//   * the session's request accounting partitions: submitted =
//     completed + failed + expired + shed + rejected + cancelled.
//
// This file runs in the TSan CI job, so it also stands in as the
// worker/watchdog/producer race detector for the resilient launch path.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "serve/session.h"
#include "serve/trace.h"
#include "sim/fault.h"

namespace davinci::serve {
namespace {

using kernels::PoolResult;

// Small geometries: a TSan run of all mixes stays in seconds.
constexpr const char* kTrace =
    "op=maxpool n=1 c1=2 ih=21 iw=21 k=3 s=2 impl=im2col x=3 "
    "deadline_us=60000000\n"
    "op=maxpool n=2 c1=2 ih=21 iw=21 k=3 s=2 impl=im2col x=2\n"
    "op=avgpool n=1 c1=2 ih=21 iw=21 k=3 s=2 impl=im2col x=2\n"
    "op=maxpool_bwd n=1 c1=2 ih=19 iw=19 k=3 s=2 merge=col2im x=2\n"
    "op=global_avgpool n=1 c1=8 ih=8 iw=8 x=1\n";

bool same_tensor(const TensorF16& a, const TensorF16& b) {
  // A rank-0 tensor is an absent result slot (size() reports 1, the
  // empty product, but owns no data) -- equal iff both are absent.
  if (a.shape().rank() != b.shape().rank()) return false;
  if (a.shape().rank() == 0) return true;
  if (a.size() != b.size()) return false;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    if (!(a.flat(i) == b.flat(i))) return false;
  }
  return true;
}

bool same_result(const PoolResult& a, const PoolResult& b) {
  return same_tensor(a.out, b.out) && same_tensor(a.mask, b.mask) &&
         same_tensor(a.grad_in, b.grad_in);
}

// Replays the trace under one fault mix and checks the contract.
void soak_one(const std::string& spec, std::uint64_t seed) {
  SCOPED_TRACE("mix '" + spec + "' seed " + std::to_string(seed));
  const auto entries = parse_trace(kTrace);
  std::vector<MaterializedRequest> requests;
  std::vector<std::size_t> request_entry;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (int r = 0; r < entries[i].repeat; ++r) {
      requests.push_back(materialize(entries[i], i * 100 + std::uint64_t(r)));
      request_entry.push_back(i);
    }
  }

  Device lone;
  lone.set_double_buffer(true);
  std::vector<PoolResult> truth;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    truth.push_back(kernels::run_pool(lone, entries[request_entry[r]].op,
                                      requests[r].inputs()));
  }

  SessionOptions opts;
  ResilienceOptions res;
  res.plan = FaultPlan::parse(spec, seed);
  res.verify = res.plan.has_silent_sites();
  res.max_retries = 4;
  opts.resilience = res;
  opts.watchdog_timeout_us = 50'000'000;  // exercises the watchdog thread

  std::int64_t completed = 0, failed = 0;
  SessionStats stats;
  {
    Session session(Cluster{}, opts);
    std::vector<std::future<PoolResult>> futures;
    for (std::size_t r = 0; r < requests.size(); ++r) {
      const TraceEntry& e = entries[request_entry[r]];
      futures.push_back(session.submit(
          e.op, requests[r].inputs(),
          SubmitOptions{.deadline_us = e.deadline_us, .prio = e.prio}));
    }
    ASSERT_TRUE(session.drain(std::chrono::microseconds(120'000'000)));
    for (std::size_t r = 0; r < futures.size(); ++r) {
      // Drained: every future must already be resolved -- no hangs.
      ASSERT_EQ(futures[r].wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "request " << r << " left unresolved";
      try {
        const PoolResult got = futures[r].get();
        completed += 1;
        EXPECT_TRUE(same_result(got, truth[r]))
            << "request " << r << " served corrupted data";
      } catch (const Error&) {
        failed += 1;  // resolved with an exception: the contract holds
      }
    }
    stats = session.stats();
  }

  EXPECT_EQ(completed, stats.completed);
  EXPECT_EQ(completed + failed, static_cast<std::int64_t>(requests.size()));
  // The accounting partition: nothing double-counted, nothing lost.
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed + stats.expired +
                                 stats.shed + stats.rejected +
                                 stats.cancelled);
}

TEST(ServeChaos, BitflipUbMix) { soak_one("bitflip:ub:1e-6", 11); }

TEST(ServeChaos, MteDropMix) { soak_one("mte_drop:1e-3", 23); }

TEST(ServeChaos, CoreFailMix) { soak_one("core_fail@3", 37); }

TEST(ServeChaos, BitflipWithCoreFailMix) {
  soak_one("bitflip:l1:1e-6,core_fail@5", 41);
}

TEST(ServeChaos, VecFaultWithLateCoreFailMix) {
  soak_one("vec_fault:1e-5,core_fail@1@2", 53);
}

TEST(ServeChaos, TripleCompoundMix) {
  soak_one("bitflip:ub:5e-7,mte_drop:2e-4,core_fail@7", 67);
}

}  // namespace
}  // namespace davinci::serve
