// serve::PlanCache -- LRU tiling-plan cache keyed on the full planning
// input (direction, lowering, window, geometry, mask, double-buffer).
// The load-bearing property: a cached plan equals a freshly computed one,
// so attaching it to a PoolOp changes nothing.
#include <gtest/gtest.h>

#include "akg/tiling.h"
#include "arch/arch_config.h"
#include "serve/plan_cache.h"

namespace davinci::serve {
namespace {

using kernels::MergeImpl;
using kernels::PoolOp;
using kernels::PoolOpKind;

PlanKey fwd_key(std::int64_t ih, std::int64_t iw,
                akg::PoolImpl impl = akg::PoolImpl::kIm2col) {
  PlanKey k;
  k.impl = impl;
  k.window = Window2d::pool(3, 2);
  k.ih = ih;
  k.iw = iw;
  k.double_buffer = true;
  return k;
}

TEST(PlanCache, MissThenHit) {
  PlanCache cache(8);
  const ArchConfig arch = ArchConfig::ascend910();
  const PlanKey key = fwd_key(71, 71);
  const akg::PoolPlan first = cache.get(arch, key);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);
  const akg::PoolPlan second = cache.get(arch, key);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(first, second);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(PlanCache, CachedPlanEqualsFreshPlan) {
  PlanCache cache(8);
  const ArchConfig arch = ArchConfig::ascend910();
  const PlanKey key = fwd_key(95, 95);
  const akg::PoolPlan cached = cache.get(arch, key);
  const akg::PoolPlan fresh =
      akg::plan_fwd(key.impl, arch, key.window, key.ih, key.iw,
                    key.with_mask, key.double_buffer);
  EXPECT_EQ(cached, fresh);
}

TEST(PlanCache, BackwardKeyUsesBackwardPlanner) {
  PlanCache cache(8);
  const ArchConfig arch = ArchConfig::ascend910();
  PlanKey key = fwd_key(63, 63);
  key.backward = true;
  const akg::PoolPlan cached = cache.get(arch, key);
  const akg::PoolPlan fresh =
      akg::plan_bwd(arch, key.window, key.ih, key.iw, key.double_buffer);
  EXPECT_EQ(cached, fresh);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  const ArchConfig arch = ArchConfig::ascend910();
  const PlanKey a = fwd_key(31, 31), b = fwd_key(41, 41), c = fwd_key(51, 51);
  cache.get(arch, a);
  cache.get(arch, b);
  cache.get(arch, a);  // a is now most recent; b is the LRU entry
  cache.get(arch, c);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.peek(a));
  EXPECT_FALSE(cache.peek(b));
  EXPECT_TRUE(cache.peek(c));
}

TEST(PlanCache, DistinctKeysDistinctEntries) {
  PlanCache cache(16);
  const ArchConfig arch = ArchConfig::ascend910();
  cache.get(arch, fwd_key(71, 71, akg::PoolImpl::kIm2col));
  cache.get(arch, fwd_key(71, 71, akg::PoolImpl::kDirect));
  PlanKey masked = fwd_key(71, 71);
  masked.with_mask = true;
  masked.double_buffer = false;  // mask-fwd plans never double-buffer
  cache.get(arch, masked);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().misses, 3);
}

TEST(PlanKeyFor, MapsOpsToPlanningInputs) {
  const Window2d w = Window2d::pool(3, 2);
  const PoolOp fwd{.kind = PoolOpKind::kMaxFwd, .window = w,
                   .fwd = akg::PoolImpl::kIm2col};
  const auto fk = plan_key_for(fwd, 71, 71, /*double_buffer=*/true);
  ASSERT_TRUE(fk.has_value());
  EXPECT_FALSE(fk->backward);
  EXPECT_FALSE(fk->with_mask);
  EXPECT_TRUE(fk->double_buffer);

  // Mask-producing forward: with_mask set AND double-buffer forced off,
  // matching what the kernel actually plans with.
  const PoolOp mask{.kind = PoolOpKind::kMaxMaskFwd, .window = w,
                    .fwd = akg::PoolImpl::kIm2col};
  const auto mk = plan_key_for(mask, 71, 71, true);
  ASSERT_TRUE(mk.has_value());
  EXPECT_TRUE(mk->with_mask);
  EXPECT_FALSE(mk->double_buffer);

  const PoolOp bwd{.kind = PoolOpKind::kMaxBwd, .window = w,
                   .merge = MergeImpl::kCol2im};
  const auto bk = plan_key_for(bwd, 71, 71, true);
  ASSERT_TRUE(bk.has_value());
  EXPECT_TRUE(bk->backward);

  // Global average pooling has no tiling plan.
  const PoolOp gap{.kind = PoolOpKind::kGlobalAvg};
  EXPECT_FALSE(plan_key_for(gap, 8, 8, true).has_value());
}

// Warm-lane equivalence: a kernel launch with a cached plan attached
// skips in-kernel validation and re-planning entirely, so its outputs
// must be bit-for-bit those of the cold launch that validates and plans
// from scratch.
TEST(WarmLane, PlanHitOutputsMatchPlanMissOutputs) {
  TensorF16 in(Shape{1, 2, 35, 35, kC0});
  in.fill_random_ints(5);
  PoolOp cold;
  cold.kind = PoolOpKind::kMaxFwd;
  cold.window = Window2d::pool(3, 2);
  kernels::PoolInputs pi;
  pi.in = &in;

  Device dev_cold;
  const kernels::PoolResult miss = kernels::run_pool(dev_cold, cold, pi);

  PlanCache cache(4);
  PoolOp warm = cold;
  const auto key = plan_key_for(warm, 35, 35, dev_cold.double_buffer());
  ASSERT_TRUE(key.has_value());
  warm.plan = cache.get(ArchConfig::ascend910(), *key);
  Device dev_warm;
  const kernels::PoolResult hit = kernels::run_pool(dev_warm, warm, pi);

  ASSERT_EQ(miss.out.size(), hit.out.size());
  for (std::int64_t i = 0; i < miss.out.size(); ++i) {
    ASSERT_EQ(miss.out.flat(i).bits(), hit.out.flat(i).bits())
        << "flat " << i;
  }
}

// The warm lane is sound because validation moved *into* plan
// construction: a bad descriptor must fail on its first (planning) use,
// never reach a launch unvalidated.
TEST(WarmLane, ValidationFailuresSurfaceAtFirstUse) {
  PlanCache cache(4);
  PlanKey bad = fwd_key(71, 71);
  bad.window.kh = 0;  // invalid: empty window
  EXPECT_THROW(cache.get(ArchConfig::ascend910(), bad), Error);

  // The cold (plan-less) kernel path still validates itself.
  TensorF16 in(Shape{1, 1, 16, 16, kC0});
  in.fill_random_ints(2);
  PoolOp op;
  op.kind = PoolOpKind::kMaxFwd;
  op.window = Window2d::pool(3, 2);
  op.window.kh = 0;
  kernels::PoolInputs pi;
  pi.in = &in;
  Device dev;
  EXPECT_THROW(kernels::run_pool(dev, op, pi), Error);
}

TEST(PlanCache, ClearResetsEntriesButKeepsStats) {
  PlanCache cache(4);
  const ArchConfig arch = ArchConfig::ascend910();
  cache.get(arch, fwd_key(31, 31));
  cache.get(arch, fwd_key(31, 31));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.get(arch, fwd_key(31, 31));
  EXPECT_EQ(cache.stats().misses, 2);  // re-planned after clear
  EXPECT_EQ(cache.stats().hits, 1);
}

}  // namespace
}  // namespace davinci::serve
