// Tests for the AKG-style lowering pass: DSL compute definitions pattern-
// matched, scheduled and executed on the simulator, validated against the
// DSL interpreter (same definition, two execution paths).
#include "kernels/lower.h"

#include <gtest/gtest.h>

#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci::akg {
namespace {

// Builds the Listing-1 compute for the given geometry and reduction.
dsl::Compute pooling_compute(const Shape& in_shape, const Window2d& w,
                             dsl::ReduceKind kind) {
  const auto input = dsl::placeholder(in_shape, "input", 0);
  const auto rh = dsl::reduce_axis(w.kh, "red_h");
  const auto rw = dsl::reduce_axis(w.kw, "red_w");
  const Shape out{in_shape[0], in_shape[1], w.out_h(in_shape[2]),
                  w.out_w(in_shape[3]), kC0};
  return dsl::compute(out, [&](const std::vector<dsl::IndexExpr>& i) {
    const dsl::Expr body =
        input(i[0], i[1], i[2] * w.sh + rh, i[3] * w.sw + rw, i[4]);
    switch (kind) {
      case dsl::ReduceKind::kMin: return dsl::min(body, {rh, rw});
      case dsl::ReduceKind::kSum: return dsl::sum(body, {rh, rw});
      case dsl::ReduceKind::kMax: break;
    }
    return dsl::max(body, {rh, rw});
  });
}

TEST(Lowering, MatchExtractsWindow) {
  Window2d w;
  w.kh = 3;
  w.kw = 2;
  w.sh = 2;
  w.sw = 3;
  const dsl::Compute c =
      pooling_compute(Shape{1, 2, 9, 11, kC0}, w, dsl::ReduceKind::kMax);
  const PoolingPattern p = match_pooling(c);
  EXPECT_EQ(p.window.kh, 3);
  EXPECT_EQ(p.window.kw, 2);
  EXPECT_EQ(p.window.sh, 2);
  EXPECT_EQ(p.window.sw, 3);
  EXPECT_EQ(p.reduce, dsl::ReduceKind::kMax);
}

TEST(Lowering, LoweredMaxpoolEqualsInterpreter) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 11, 11, 71);
  const Window2d w = Window2d::pool(3, 2);
  const dsl::Compute c =
      pooling_compute(in.shape(), w, dsl::ReduceKind::kMax);
  auto lowered = lower_and_run(dev, c, in);
  const TensorF16 interpreted = dsl::evaluate(c, {&in});
  testutil::expect_equal_f16(lowered.out, interpreted, "lowered vs DSL");
  // The scheduler must have picked the Figure-8 winner for stride 2.
  EXPECT_EQ(lowered.impl, PoolImpl::kIm2col);
  EXPECT_GT(lowered.run.device_cycles, 0);
}

TEST(Lowering, SchedulerPicksDirectAtStrideWidth1) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 72);
  const Window2d w = Window2d::pool(3, 1);
  const dsl::Compute c =
      pooling_compute(in.shape(), w, dsl::ReduceKind::kMax);
  auto lowered = lower_and_run(dev, c, in);
  EXPECT_EQ(lowered.impl, PoolImpl::kDirect);
  testutil::expect_equal_f16(lowered.out, ref::maxpool_fwd(in, w),
                             "stride-1 lowering");
}

TEST(Lowering, MinAndSumReductions) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 8, 8, 73, -3, 3);
  const Window2d w = Window2d::pool(2, 2);
  {
    const dsl::Compute c =
        pooling_compute(in.shape(), w, dsl::ReduceKind::kMin);
    auto lowered = lower_and_run(dev, c, in);
    testutil::expect_equal_f16(lowered.out, dsl::evaluate(c, {&in}), "min");
  }
  {
    const dsl::Compute c =
        pooling_compute(in.shape(), w, dsl::ReduceKind::kSum);
    auto lowered = lower_and_run(dev, c, in);
    testutil::expect_equal_f16(lowered.out, dsl::evaluate(c, {&in}), "sum");
  }
}

TEST(Lowering, AsymmetricGeometry) {
  Device dev;
  Window2d w;
  w.kh = 2;
  w.kw = 4;
  w.sh = 3;
  w.sw = 2;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 11, 14, 74);
  const dsl::Compute c =
      pooling_compute(in.shape(), w, dsl::ReduceKind::kMax);
  auto lowered = lower_and_run(dev, c, in);
  testutil::expect_equal_f16(lowered.out, dsl::evaluate(c, {&in}),
                             "asymmetric");
}

TEST(Lowering, RejectsNonPoolingComputes) {
  const auto input = dsl::placeholder(Shape{1, 1, 8, 8, kC0}, "x", 0);
  // Elementwise compute: no reduction.
  const dsl::Compute ew = dsl::compute(
      Shape{1, 1, 8, 8, kC0}, [&](const std::vector<dsl::IndexExpr>& i) {
        return input(i[0], i[1], i[2], i[3], i[4]) * dsl::constant(2.0f);
      });
  EXPECT_THROW(match_pooling(ew), Error);

  // Reduction over one axis only.
  const auto r = dsl::reduce_axis(2, "r");
  const dsl::Compute one = dsl::compute(
      Shape{1, 1, 4, 8, kC0}, [&](const std::vector<dsl::IndexExpr>& i) {
        return dsl::max(input(i[0], i[1], i[2] * 2 + r, i[3], i[4]), {r});
      });
  EXPECT_THROW(match_pooling(one), Error);

  // Non-identity channel indexing.
  const auto rh = dsl::reduce_axis(2, "rh");
  const auto rw = dsl::reduce_axis(2, "rw");
  const dsl::Compute twisted = dsl::compute(
      Shape{1, 1, 4, 4, kC0}, [&](const std::vector<dsl::IndexExpr>& i) {
        return dsl::max(
            input(i[0], i[1], i[2] * 2 + rh, i[3] * 2 + rw, i[1]), {rh, rw});
      });
  EXPECT_THROW(match_pooling(twisted), Error);

  // Output dims inconsistent with Equation (1).
  const auto rh2 = dsl::reduce_axis(2, "rh");
  const auto rw2 = dsl::reduce_axis(2, "rw");
  const dsl::Compute bad = dsl::compute(
      Shape{1, 1, 3, 4, kC0}, [&](const std::vector<dsl::IndexExpr>& i) {
        return dsl::max(
            input(i[0], i[1], i[2] * 2 + rh2, i[3] * 2 + rw2, i[4]),
            {rh2, rw2});
      });
  EXPECT_THROW(match_pooling(bad), Error);
}

}  // namespace
}  // namespace davinci::akg
