// Tests for the bounded log-linear histogram (common/histogram.h),
// including the gated accuracy property: every reported percentile is
// within 5% of the exact-sample percentile -- the tolerance the CI
// pipelined-serve gate asserts on the metrics document.
#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/json.h"
#include "common/percentile.h"
#include "common/prng.h"
#include "gtest/gtest.h"

using davinci::Xoshiro256;
using davinci::stats::Histogram;
using davinci::stats::Summary;

namespace {

// |hist - exact| relative to the exact value (absolute when exact ~ 0).
double rel_err(double hist, double exact) {
  if (std::abs(exact) < 1e-12) return std::abs(hist - exact);
  return std::abs(hist - exact) / std::abs(exact);
}

void expect_percentiles_within(const std::vector<double>& samples,
                               double tol, const char* label) {
  Histogram h;
  for (double v : samples) h.record(v);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = davinci::stats::percentile(sorted, q);
    const double approx = h.percentile(q);
    EXPECT_LE(rel_err(approx, exact), tol)
        << label << ": q=" << q << " exact=" << exact
        << " hist=" << approx;
  }
}

}  // namespace

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.dropped(), 0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  const Summary s = h.summary();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p999, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(h.buckets_json(), "[]");
}

TEST(Histogram, ExactFieldsAreExact) {
  Histogram h;
  h.record(3.0);
  h.record(5.0);
  h.record(100.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 108.0);
  EXPECT_DOUBLE_EQ(h.mean(), 36.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, NonFiniteSamplesAreDroppedAndCounted) {
  Histogram h;
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(std::numeric_limits<double>::infinity());
  h.record(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.dropped(), 3);
  h.record(7.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 7.0);
}

TEST(Histogram, NegativesClampToZero) {
  Histogram h;
  h.record(-12.5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.dropped(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, SingleSampleIsReproducedExactly) {
  // min/max clamping pins a one-sample histogram to the sample itself,
  // whatever the bucket geometry quantizes to.
  for (double v : {0.25, 1.0, 37.5, 1234.0, 9.9e9}) {
    Histogram h;
    h.record(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), v);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), v);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), v);
  }
}

TEST(Histogram, BucketGeometryIsMonotoneAndTight) {
  // Every bucket's bounds nest: lo(b) < hi(b) == lo(b+1), and bucket_of
  // maps each bound into the bucket it opens.
  for (int b = 0; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_LT(Histogram::bucket_lo(b), Histogram::bucket_hi(b)) << b;
    EXPECT_DOUBLE_EQ(Histogram::bucket_hi(b), Histogram::bucket_lo(b + 1))
        << b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b) << b;
  }
  // Relative bucket width above 1.0 is bounded by 1/kSub (the 3.125%
  // quantization the 5% gate rides on).
  for (int b = Histogram::kSub; b + 1 < Histogram::kBuckets; ++b) {
    const double lo = Histogram::bucket_lo(b);
    const double width = Histogram::bucket_hi(b) - lo;
    EXPECT_LE(width / lo, 1.0 / Histogram::kSub + 1e-12) << b;
  }
}

TEST(Histogram, PercentilesWithin5PercentUniform) {
  Xoshiro256 rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(1.0 + rng.next_double() * 5000.0);
  }
  expect_percentiles_within(samples, 0.05, "uniform");
}

TEST(Histogram, PercentilesWithin5PercentHeavyTail) {
  // Exponential-ish latencies spanning several octaves -- the shape a
  // serving replay actually produces (many fast, a long tail).
  Xoshiro256 rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.next_double();
    samples.push_back(20.0 * (1.0 + -std::log(1.0 - u) * 40.0));
  }
  expect_percentiles_within(samples, 0.05, "heavy-tail");
}

TEST(Histogram, PercentilesWithin5PercentBimodal) {
  // Cache-hit/cache-miss bimodality: two tight clusters far apart.
  Xoshiro256 rng(1234);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double base = rng.next_below(4) == 0 ? 900.0 : 30.0;
    samples.push_back(base * (1.0 + 0.05 * rng.next_double()));
  }
  expect_percentiles_within(samples, 0.05, "bimodal");
}

TEST(Histogram, MergeMatchesRecordingEverythingInOne) {
  Xoshiro256 rng(99);
  Histogram all, a, b;
  for (int i = 0; i < 5000; ++i) {
    const double v = 1.0 + rng.next_double() * 800.0;
    all.record(v);
    (i % 2 == 0 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Summation order differs between the merged and the all-in-one
  // histogram, so the sums agree only to rounding.
  EXPECT_NEAR(a.sum(), all.sum(), 1e-6 * all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), all.percentile(q)) << q;
  }
  EXPECT_EQ(a.buckets_json(), all.buckets_json());
}

TEST(Histogram, ResetForgetsEverything) {
  Histogram h;
  h.record(5.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.dropped(), 0);
  EXPECT_EQ(h.buckets_json(), "[]");
}

TEST(Histogram, BucketsJsonParsesAndSumsToCount) {
  Xoshiro256 rng(5);
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(1.0 + rng.next_double() * 300.0);
  const davinci::json::Value v = davinci::json::parse(h.buckets_json());
  std::int64_t total = 0;
  double prev_lo = -1.0;
  for (const davinci::json::Value& pair : v.as_array()) {
    const double lo = pair.as_array()[0].as_double();
    EXPECT_GT(lo, prev_lo);  // ascending, no duplicates
    prev_lo = lo;
    total += pair.as_array()[1].as_int();
  }
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, HugeValuesClampIntoTopBucketButMaxStaysExact) {
  Histogram h;
  const double huge = 1e15;  // beyond 2^40
  h.record(huge);
  h.record(2.0);
  EXPECT_DOUBLE_EQ(h.max(), huge);
  // The top-bucket percentile clamps to the exact max envelope.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), huge);
}

TEST(SummaryGuards, EmptyAndNonFiniteSamples) {
  // stats::summarize must not sort NaNs (UB) and must zero-fill on
  // empty input; non-finite samples are excluded from the percentiles.
  std::vector<double> empty;
  const Summary z = davinci::stats::summarize(empty);
  EXPECT_EQ(z.count, 0);
  EXPECT_EQ(z.p50, 0.0);
  EXPECT_EQ(z.max, 0.0);

  std::vector<double> mixed = {5.0,
                               std::numeric_limits<double>::quiet_NaN(),
                               1.0,
                               std::numeric_limits<double>::infinity(),
                               3.0};
  const Summary s = davinci::stats::summarize(mixed);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);

  // percentile() clamps out-of-range quantiles instead of indexing OOB.
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(davinci::stats::percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(davinci::stats::percentile(v, 1.5), 3.0);
}
