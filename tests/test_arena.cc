// TensorArena -- the process-wide tensor-pool allocator behind Tensor<T>
// storage (tensor/arena.h). The load-bearing properties: buffers recycle
// across equal-size acquires, results are bit-identical with the arena
// enabled, disabled, or poisoning every acquire (nothing may rely on a
// freshly zeroed allocation except Tensor's own zero-fill constructor),
// and the kUninitialized construction mode is storage-only.
#include <gtest/gtest.h>

#include <climits>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "kernels/pooling.h"
#include "tensor/arena.h"
#include "tensor/fractal.h"
#include "tensor/tensor.h"

namespace davinci {
namespace {

// RAII guard: every test restores the global arena to its default
// enabled / unpoisoned state, whatever it does in between.
struct ArenaGuard {
  ~ArenaGuard() {
    TensorArena::global().set_poison(false);
    TensorArena::global().set_enabled(true);
  }
};

std::vector<std::uint16_t> bits_of(const TensorF16& t) {
  std::vector<std::uint16_t> out(static_cast<std::size_t>(t.size()));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    out[static_cast<std::size_t>(i)] = t.flat(i).bits();
  }
  return out;
}

kernels::PoolResult run_maxpool(Device& dev, const TensorF16& in) {
  kernels::PoolOp op;
  op.kind = kernels::PoolOpKind::kMaxFwd;
  op.window = Window2d::pool(3, 2);
  kernels::PoolInputs pi;
  pi.in = &in;
  return kernels::run_pool(dev, op, pi);
}

TEST(TensorArena, ReusesReleasedBuffers) {
  ArenaGuard guard;
  TensorArena& arena = TensorArena::global();
  arena.trim();
  arena.reset_stats();
  { TensorF16 t(Shape{2, 3, 16, 16, kC0}); }
  const auto after_first = arena.stats();
  EXPECT_GE(after_first.allocs, 1);
  EXPECT_GE(after_first.releases, 1);
  { TensorF16 t(Shape{2, 3, 16, 16, kC0}); }
  const auto after_second = arena.stats();
  EXPECT_GE(after_second.reuses, 1)
      << "equal-size reacquire must come from the free list";
}

TEST(TensorArena, DisabledDegradesToPlainAllocation) {
  ArenaGuard guard;
  TensorArena& arena = TensorArena::global();
  arena.set_enabled(false);
  arena.reset_stats();
  { TensorF16 t(Shape{1, 1, 8, 8, kC0}); }
  { TensorF16 t(Shape{1, 1, 8, 8, kC0}); }
  const auto s = arena.stats();
  EXPECT_EQ(s.reuses, 0);
  EXPECT_EQ(s.releases, 0);
  EXPECT_EQ(s.allocs, 2);
  EXPECT_EQ(s.discards, 2);
  EXPECT_EQ(s.pooled_buffers, 0);
}

TEST(TensorArena, ZeroFillConstructionIsZeroEvenUnderPoison) {
  ArenaGuard guard;
  TensorArena::global().set_poison(true);
  TensorF16 t(Shape{1, 1, 4, 4, kC0});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.flat(i).bits(), 0u) << "flat " << i;
  }
}

TEST(TensorArena, UninitializedConstructionIsStorageOnly) {
  ArenaGuard guard;
  TensorArena::global().set_poison(true);
  TensorF16 t(Shape{1, 1, 4, 4, kC0}, kUninitialized);
  // Poison mode scribbles 0xA5 over every acquired byte; an uninitialized
  // tensor must expose it (i.e. no hidden zero-fill happened).
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.flat(i).bits(), 0xA5A5u) << "flat " << i;
  }
}

// The chaos gate: one pooling launch with the arena pooling buffers, one
// with it disabled, one with poisoned acquires. Any kernel (or staging
// path) silently relying on recycled-buffer contents or fresh zero-fill
// diverges here.
TEST(TensorArena, KernelOutputsBitIdenticalAcrossArenaModes) {
  ArenaGuard guard;
  TensorArena& arena = TensorArena::global();
  TensorF16 in(Shape{1, 2, 23, 23, kC0});
  in.fill_random_ints(7);

  arena.set_enabled(true);
  // Warm the free list so the second run reuses dirty buffers.
  {
    Device warm_dev;
    run_maxpool(warm_dev, in);
  }
  Device dev_on;
  const auto on = bits_of(run_maxpool(dev_on, in).out);

  arena.set_enabled(false);
  Device dev_off;
  const auto off = bits_of(run_maxpool(dev_off, in).out);

  arena.set_enabled(true);
  arena.set_poison(true);
  Device dev_poison;
  const auto poisoned = bits_of(run_maxpool(dev_poison, in).out);

  EXPECT_EQ(on, off);
  EXPECT_EQ(on, poisoned);
}

TEST(FillRandomInts, ExtremeBoundsDoNotOverflow) {
  // hi - lo + 1 in int arithmetic overflows for these bounds; the widened
  // span must keep the draw well-defined (values land in [lo, hi]).
  TensorF16 t(Shape{1, 1, 2, 2, kC0});
  t.fill_random_ints(3, INT_MIN, INT_MAX);
  SUCCEED();
}

TEST(FillRandomInts, RejectsEmptyRange) {
  TensorF16 t(Shape{1, 1, 2, 2, kC0});
  EXPECT_THROW(t.fill_random_ints(3, 5, 4), Error);
}

TEST(FillRandomInts, SmallRangeTablePathMatchesSeededStream) {
  // The <= 64-value table fast path must consume the RNG stream exactly
  // like the generic path: same seed -> same values as a straightforward
  // re-derivation.
  TensorF16 t(Shape{1, 1, 4, 4, kC0});
  t.fill_random_ints(11, -8, 8);
  Xoshiro256 rng(11);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    const auto draw = static_cast<std::int64_t>(rng.next_below(17));
    EXPECT_EQ(t.flat(i).bits(),
              Float16(static_cast<float>(-8 + draw)).bits())
        << "flat " << i;
  }
}

}  // namespace
}  // namespace davinci
