// Unit tests for Shape, Tensor and Window2d geometry.
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tensor/pool_geometry.h"
#include "tensor/shape.h"

namespace davinci {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.stride(0), 12);
  EXPECT_EQ(s.stride(1), 4);
  EXPECT_EQ(s.stride(2), 1);
  EXPECT_EQ(s.to_string(), "(2, 3, 4)");
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, EmptyAndZeroDims) {
  Shape empty;
  EXPECT_EQ(empty.rank(), 0);
  EXPECT_EQ(empty.num_elements(), 1);
  Shape zero{0, 5};
  EXPECT_EQ(zero.num_elements(), 0);
}

TEST(Shape, OutOfRangeDimThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
  EXPECT_THROW(s.dim(-1), Error);
}

TEST(Tensor, IndexingRoundTrip) {
  TensorF32 t(Shape{2, 3, 4});
  float v = 0;
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      for (std::int64_t k = 0; k < 4; ++k) {
        t.at(i, j, k) = v++;
      }
    }
  }
  EXPECT_EQ(t.at(0, 0, 0), 0.0f);
  EXPECT_EQ(t.at(1, 2, 3), 23.0f);
  EXPECT_EQ(t.flat(23), 23.0f);
  EXPECT_EQ(t.offset(1, 0, 2), 14);
}

TEST(Tensor, BoundsChecked) {
  TensorF32 t(Shape{2, 2});
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, -1), Error);
  EXPECT_THROW(t.flat(4), Error);
}

TEST(Tensor, FillAndRandomDeterminism) {
  TensorF16 a(Shape{64});
  TensorF16 b(Shape{64});
  a.fill_random(7);
  b.fill_random(7);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.flat(i).bits(), b.flat(i).bits());
  }
  TensorF16 c(Shape{64});
  c.fill_random(8);
  int diff = 0;
  for (std::int64_t i = 0; i < 64; ++i) {
    diff += a.flat(i).bits() != c.flat(i).bits();
  }
  EXPECT_GT(diff, 0);
}

TEST(Tensor, RandomIntsAreIntegral) {
  TensorF16 t(Shape{256});
  t.fill_random_ints(3, -8, 8);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    const float v = t.flat(i).to_float();
    EXPECT_EQ(v, static_cast<float>(static_cast<int>(v)));
    EXPECT_GE(v, -8.0f);
    EXPECT_LE(v, 8.0f);
  }
}

TEST(Window2d, Equation1) {
  // The paper's Equation (1) on the Figure 5 example:
  // (Ih, Iw) = (8, 8), K = (2, 2), S = (2, 2) -> (Oh, Ow) = (4, 4).
  Window2d w = Window2d::pool(2, 2);
  EXPECT_EQ(w.out_h(8), 4);
  EXPECT_EQ(w.out_w(8), 4);
}

TEST(Window2d, Equation1WithPadding) {
  Window2d w;
  w.kh = 3;
  w.kw = 3;
  w.sh = 2;
  w.sw = 2;
  w.pt = 1;
  w.pb = 1;
  w.pl = 1;
  w.pr = 1;
  // (7 + 2 - 3) / 2 + 1 = 4.
  EXPECT_EQ(w.out_h(7), 4);
  EXPECT_EQ(w.out_w(7), 4);
}

TEST(Window2d, InceptionV3Shapes) {
  // The Figure 7 configurations: K(3,3), S(2,2), no padding.
  Window2d w = Window2d::pool(3, 2);
  EXPECT_EQ(w.out_h(147), 73);
  EXPECT_EQ(w.out_h(71), 35);
  EXPECT_EQ(w.out_h(35), 17);
}

TEST(Window2d, OverlapDetection) {
  EXPECT_TRUE(Window2d::pool(3, 2).overlapping());
  EXPECT_TRUE(Window2d::pool(3, 1).overlapping());
  EXPECT_FALSE(Window2d::pool(3, 3).overlapping());
  EXPECT_FALSE(Window2d::pool(2, 2).overlapping());
}

TEST(Window2d, InvalidThrows) {
  Window2d w = Window2d::pool(3, 2);
  EXPECT_THROW(w.out_h(2), Error);  // input smaller than kernel
  Window2d bad;
  bad.kh = 0;
  EXPECT_THROW(bad.validate(), Error);
  Window2d neg = Window2d::pool(2, 2);
  neg.pt = -1;
  EXPECT_THROW(neg.validate(), Error);
}

}  // namespace
}  // namespace davinci
