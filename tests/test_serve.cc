// serve::Session -- the batching request path must be invisible in the
// numerics: every future resolves to exactly what a lone run_pool call
// produces, whatever the batcher coalesced. Plus the bounded-queue
// contract (try_submit refuses, submit blocks), error routing through
// futures, trace parsing, and the Pipeline per-layer PoolOp override.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "nets/pipeline.h"
#include "ref/pooling_ref.h"
#include "serve/session.h"
#include "serve/trace.h"
#include "sim/metrics_registry.h"
#include "tensor/fractal.h"

namespace davinci::serve {
namespace {

using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolOpKind;
using kernels::PoolResult;

TensorF16 make_input(std::int64_t c1, std::int64_t h, std::int64_t w,
                     std::uint64_t seed) {
  TensorF16 t(Shape{1, c1, h, w, kC0});
  t.fill_random_ints(seed);
  return t;
}

void expect_same_tensor(const TensorF16& a, const TensorF16& b) {
  ASSERT_EQ(a.shape().to_string(), b.shape().to_string());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a.flat(i) == b.flat(i)) << "element " << i;
  }
}

TEST(ServeSession, CoalescedResultsBitIdenticalToLoneRuns) {
  SessionOptions opts;
  Session session(opts);

  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const int kRequests = 6;
  std::vector<TensorF16> inputs;
  for (int r = 0; r < kRequests; ++r) {
    inputs.push_back(make_input(2, 35, 35, static_cast<std::uint64_t>(r + 1)));
  }

  // Pause so all requests land in one batching window.
  session.pause();
  std::vector<std::future<PoolResult>> futures;
  for (const TensorF16& in : inputs) {
    futures.push_back(session.submit(op, PoolInputs{.in = &in}));
  }
  session.resume();
  session.drain();

  // A lone device configured identically gives the ground truth.
  Device lone;
  lone.set_double_buffer(opts.double_buffer);
  for (int r = 0; r < kRequests; ++r) {
    PoolResult got = futures[static_cast<std::size_t>(r)].get();
    PoolResult want = kernels::run_pool(
        lone, op, PoolInputs{.in = &inputs[static_cast<std::size_t>(r)]});
    expect_same_tensor(got.out, want.out);
  }

  const SessionStats s = session.stats();
  EXPECT_EQ(s.submitted, kRequests);
  EXPECT_EQ(s.completed, kRequests);
  EXPECT_EQ(s.failed, 0);
  EXPECT_LT(s.launches, kRequests);  // something actually coalesced
  EXPECT_GE(s.batches, 1);
  EXPECT_GE(s.max_batch, 2u);
}

TEST(ServeSession, MixedGeometriesStaySeparateAndCorrect) {
  Session session;
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 small = make_input(2, 21, 21, 3);
  const TensorF16 large = make_input(4, 35, 35, 4);

  session.pause();
  auto f_small = session.submit(op, PoolInputs{.in = &small});
  auto f_large = session.submit(op, PoolInputs{.in = &large});
  session.resume();
  session.drain();

  Device lone;
  lone.set_double_buffer(true);
  expect_same_tensor(f_small.get().out,
                     kernels::run_pool(lone, op, {.in = &small}).out);
  expect_same_tensor(f_large.get().out,
                     kernels::run_pool(lone, op, {.in = &large}).out);
  EXPECT_EQ(session.stats().launches, 2);  // different shapes never merge
}

TEST(ServeSession, BackwardAndMaskKindsServeCorrectly) {
  Session session;
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t h = 19;
  const TensorF16 in = make_input(2, h, h, 7);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 2, w.out_h(h), w.out_w(h), kC0});
  grad.fill_random_ints(9, 0, 5);

  const PoolOp mask_op{.kind = PoolOpKind::kMaxMaskFwd, .window = w,
                       .fwd = akg::PoolImpl::kIm2col};
  const PoolOp bwd_op{.kind = PoolOpKind::kMaxBwd, .window = w,
                      .merge = kernels::MergeImpl::kCol2im};
  const PoolInputs bwd_in{.mask = &mask, .grad = &grad, .ih = h, .iw = h};

  auto f_mask = session.submit(mask_op, PoolInputs{.in = &in});
  auto f_bwd = session.submit(bwd_op, bwd_in);
  session.drain();

  Device lone;
  lone.set_double_buffer(true);
  PoolResult got_mask = f_mask.get();
  PoolResult want_mask = kernels::run_pool(lone, mask_op, {.in = &in});
  expect_same_tensor(got_mask.out, want_mask.out);
  expect_same_tensor(got_mask.mask, want_mask.mask);
  expect_same_tensor(f_bwd.get().grad_in,
                     kernels::run_pool(lone, bwd_op, bwd_in).grad_in);
}

TEST(ServeSession, TrySubmitRefusesWhenQueueFull) {
  SessionOptions opts;
  opts.queue_depth = 2;
  Session session(opts);
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 1);

  session.pause();  // nothing drains: the queue genuinely fills
  std::vector<std::future<PoolResult>> futures;
  for (int i = 0; i < 2; ++i) {
    std::future<PoolResult> f;
    ASSERT_TRUE(session.try_submit(op, PoolInputs{.in = &in}, &f));
    futures.push_back(std::move(f));
  }
  std::future<PoolResult> rejected;
  EXPECT_FALSE(session.try_submit(op, PoolInputs{.in = &in}, &rejected));

  session.resume();
  session.drain();
  for (auto& f : futures) EXPECT_GT(f.get().out.size(), 0);

  // Space freed: admission works again.
  std::future<PoolResult> f;
  EXPECT_TRUE(session.try_submit(op, PoolInputs{.in = &in}, &f));
  session.drain();
  EXPECT_GT(f.get().out.size(), 0);
  EXPECT_EQ(session.stats().peak_queue_depth, 2);
}

TEST(ServeSession, PlanCacheHitsAcrossWaves) {
  Session session;
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(2, 35, 35, 5);
  for (int wave = 0; wave < 3; ++wave) {
    auto f = session.submit(op, PoolInputs{.in = &in});
    session.drain();
    f.get();
  }
  const SessionStats s = session.stats();
  EXPECT_EQ(s.plan_cache.misses, 1);  // planned once...
  EXPECT_GE(s.plan_cache.hits, 2);    // ...replayed ever after
  EXPECT_EQ(s.plan_cache_size, 1u);
  EXPECT_GT(s.plan_cache.hit_rate(), 0.5);
}

TEST(ServeSession, KernelErrorsSurfaceThroughFutureNotTerminate) {
  Session session;
  // Rank-4 input: the batcher's geometry check must reject it, fail the
  // future, and leave the worker alive for the next (valid) request.
  TensorF16 bad(Shape{1, 2, 9, 9});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  auto f_bad = session.submit(op, PoolInputs{.in = &bad});
  session.drain();
  EXPECT_THROW(f_bad.get(), Error);
  EXPECT_EQ(session.stats().failed, 1);

  const TensorF16 good = make_input(1, 15, 15, 2);
  auto f_good = session.submit(op, PoolInputs{.in = &good});
  session.drain();
  EXPECT_GT(f_good.get().out.size(), 0);
  EXPECT_EQ(session.stats().completed, 1);
}

TEST(ServeSession, ServeJsonLandsInMetricsRegistryAsSchemaV2) {
  Session session;
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 3);
  session.submit(op, PoolInputs{.in = &in}).get();
  session.drain();

  MetricsRegistry reg;
  session.add_metrics(reg);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
}

TEST(ServeTrace, ParsesOpsGeometriesAndRepeats) {
  const auto entries = parse_trace(
      "# comment line\n"
      "op=maxpool n=2 c1=4 ih=35 iw=35 k=3 s=2 impl=im2col x=3\n"
      "\n"
      "op=maxpool_bwd c1=2 ih=19 iw=19 k=3 s=2 merge=col2im\n"
      "op=global_avgpool c1=4 ih=8 iw=8\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].op.kind, PoolOpKind::kMaxFwd);
  EXPECT_EQ(entries[0].n, 2);
  EXPECT_EQ(entries[0].repeat, 3);
  EXPECT_EQ(entries[0].op.fwd, akg::PoolImpl::kIm2col);
  EXPECT_EQ(entries[1].op.kind, PoolOpKind::kMaxBwd);
  EXPECT_EQ(entries[1].op.merge, kernels::MergeImpl::kCol2im);
  EXPECT_EQ(entries[2].op.kind, PoolOpKind::kGlobalAvg);

  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 bogus=1\n"), Error);
  EXPECT_THROW(parse_trace("n=1 ih=9 iw=9\n"), Error);  // missing op=
  EXPECT_THROW(parse_trace("op=maxpool k=3 s=2\n"), Error);  // no geometry
}

TEST(ServeTrace, MaterializedRequestsServeEndToEnd) {
  const auto entries = parse_trace(
      "op=maxpool c1=2 ih=21 iw=21 k=3 s=2 impl=auto\n"
      "op=avgpool_bwd c1=2 ih=19 iw=19 k=3 s=2 merge=vadd\n");
  Session session;
  std::vector<MaterializedRequest> reqs;
  std::vector<std::future<PoolResult>> futures;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    reqs.push_back(materialize(entries[i], /*seed=*/i + 1));
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    futures.push_back(session.submit(entries[i].op, reqs[i].inputs()));
  }
  session.drain();
  EXPECT_GT(futures[0].get().out.size(), 0);
  EXPECT_GT(futures[1].get().grad_in.size(), 0);
}

// The Pipeline per-layer override: a layer with an explicit PoolOp runs
// that exact descriptor regardless of the stack choice.
TEST(PipelineOverride, PerLayerPoolOpWinsOverStack) {
  const std::int64_t c1 = 2, h = 21;
  TensorF16 in(Shape{1, c1, h, h, kC0});
  in.fill_random_ints(13);
  const Window2d w = Window2d::pool(3, 2);

  nets::Pipeline plain;
  plain.maxpool(w);
  nets::Pipeline overridden;
  overridden.maxpool(kernels::PoolOp{.kind = kernels::PoolOpKind::kMaxFwd,
                                     .window = w,
                                     .fwd = akg::PoolImpl::kIm2col});

  Device d1, d2;
  // Standard stack would lower direct; the override pins im2col. Cycle
  // counts must match the accelerated stack exactly.
  const auto want = plain.run(d1, in, nets::PoolingStack::kAccelerated);
  const auto got = overridden.run(d2, in, nets::PoolingStack::kStandard);
  ASSERT_EQ(got.layers.size(), 1u);
  EXPECT_EQ(got.layers[0].cycles, want.layers[0].cycles);
  expect_same_tensor(got.out, want.out);
}

TEST(PipelineOverride, MismatchedKindIsRejected) {
  nets::Pipeline p;
  EXPECT_THROW(p.maxpool(kernels::PoolOp{.kind = kernels::PoolOpKind::kAvgFwd,
                                         .window = Window2d::pool(3, 2)}),
               Error);
}

}  // namespace
}  // namespace davinci::serve
