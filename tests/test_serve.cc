// serve::Session -- the batching request path must be invisible in the
// numerics: every future resolves to exactly what a lone run_pool call
// produces, whatever the batcher coalesced. Plus the bounded-queue
// contract (try_submit refuses, submit blocks), error routing through
// futures, trace parsing, and the Pipeline per-layer PoolOp override.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "nets/pipeline.h"
#include "ref/pooling_ref.h"
#include "serve/session.h"
#include "serve/trace.h"
#include "sim/metrics_registry.h"
#include "tensor/fractal.h"

namespace davinci::serve {
namespace {

using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolOpKind;
using kernels::PoolResult;

TensorF16 make_input(std::int64_t c1, std::int64_t h, std::int64_t w,
                     std::uint64_t seed) {
  TensorF16 t(Shape{1, c1, h, w, kC0});
  t.fill_random_ints(seed);
  return t;
}

void expect_same_tensor(const TensorF16& a, const TensorF16& b) {
  ASSERT_EQ(a.shape().to_string(), b.shape().to_string());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a.flat(i) == b.flat(i)) << "element " << i;
  }
}

TEST(ServeSession, CoalescedResultsBitIdenticalToLoneRuns) {
  SessionOptions opts;
  Session session(Cluster{}, opts);

  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const int kRequests = 6;
  std::vector<TensorF16> inputs;
  for (int r = 0; r < kRequests; ++r) {
    inputs.push_back(make_input(2, 35, 35, static_cast<std::uint64_t>(r + 1)));
  }

  // Pause so all requests land in one batching window.
  session.pause();
  std::vector<std::future<PoolResult>> futures;
  for (const TensorF16& in : inputs) {
    futures.push_back(session.submit(op, PoolInputs{.in = &in}));
  }
  session.resume();
  session.drain();

  // A lone device configured identically gives the ground truth.
  Device lone;
  lone.set_double_buffer(opts.double_buffer);
  for (int r = 0; r < kRequests; ++r) {
    PoolResult got = futures[static_cast<std::size_t>(r)].get();
    PoolResult want = kernels::run_pool(
        lone, op, PoolInputs{.in = &inputs[static_cast<std::size_t>(r)]});
    expect_same_tensor(got.out, want.out);
  }

  const SessionStats s = session.stats();
  EXPECT_EQ(s.submitted, kRequests);
  EXPECT_EQ(s.completed, kRequests);
  EXPECT_EQ(s.failed, 0);
  EXPECT_LT(s.launches, kRequests);  // something actually coalesced
  EXPECT_GE(s.batches, 1);
  EXPECT_GE(s.max_batch, 2u);
}

TEST(ServeSession, MixedGeometriesStaySeparateAndCorrect) {
  Session session(Cluster{});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 small = make_input(2, 21, 21, 3);
  const TensorF16 large = make_input(4, 35, 35, 4);

  session.pause();
  auto f_small = session.submit(op, PoolInputs{.in = &small});
  auto f_large = session.submit(op, PoolInputs{.in = &large});
  session.resume();
  session.drain();

  Device lone;
  lone.set_double_buffer(true);
  expect_same_tensor(f_small.get().out,
                     kernels::run_pool(lone, op, {.in = &small}).out);
  expect_same_tensor(f_large.get().out,
                     kernels::run_pool(lone, op, {.in = &large}).out);
  EXPECT_EQ(session.stats().launches, 2);  // different shapes never merge
}

TEST(ServeSession, BackwardAndMaskKindsServeCorrectly) {
  Session session(Cluster{});
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t h = 19;
  const TensorF16 in = make_input(2, h, h, 7);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 2, w.out_h(h), w.out_w(h), kC0});
  grad.fill_random_ints(9, 0, 5);

  const PoolOp mask_op{.kind = PoolOpKind::kMaxMaskFwd, .window = w,
                       .fwd = akg::PoolImpl::kIm2col};
  const PoolOp bwd_op{.kind = PoolOpKind::kMaxBwd, .window = w,
                      .merge = kernels::MergeImpl::kCol2im};
  const PoolInputs bwd_in{.mask = &mask, .grad = &grad, .ih = h, .iw = h};

  auto f_mask = session.submit(mask_op, PoolInputs{.in = &in});
  auto f_bwd = session.submit(bwd_op, bwd_in);
  session.drain();

  Device lone;
  lone.set_double_buffer(true);
  PoolResult got_mask = f_mask.get();
  PoolResult want_mask = kernels::run_pool(lone, mask_op, {.in = &in});
  expect_same_tensor(got_mask.out, want_mask.out);
  expect_same_tensor(got_mask.mask, want_mask.mask);
  expect_same_tensor(f_bwd.get().grad_in,
                     kernels::run_pool(lone, bwd_op, bwd_in).grad_in);
}

TEST(ServeSession, TrySubmitRefusesWhenQueueFull) {
  SessionOptions opts;
  opts.queue_depth = 2;
  Session session(Cluster{}, opts);
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 1);

  session.pause();  // nothing drains: the queue genuinely fills
  std::vector<std::future<PoolResult>> futures;
  for (int i = 0; i < 2; ++i) {
    std::future<PoolResult> f;
    ASSERT_TRUE(session.try_submit(op, PoolInputs{.in = &in}, &f));
    futures.push_back(std::move(f));
  }
  std::future<PoolResult> rejected;
  EXPECT_FALSE(session.try_submit(op, PoolInputs{.in = &in}, &rejected));

  session.resume();
  session.drain();
  for (auto& f : futures) EXPECT_GT(f.get().out.size(), 0);

  // Space freed: admission works again.
  std::future<PoolResult> f;
  EXPECT_TRUE(session.try_submit(op, PoolInputs{.in = &in}, &f));
  session.drain();
  EXPECT_GT(f.get().out.size(), 0);
  EXPECT_EQ(session.stats().peak_queue_depth, 2);
}

TEST(ServeSession, PlanCacheHitsAcrossWaves) {
  Session session(Cluster{});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(2, 35, 35, 5);
  for (int wave = 0; wave < 3; ++wave) {
    auto f = session.submit(op, PoolInputs{.in = &in});
    session.drain();
    f.get();
  }
  const SessionStats s = session.stats();
  EXPECT_EQ(s.plan_cache.misses, 1);  // planned once...
  EXPECT_GE(s.plan_cache.hits, 2);    // ...replayed ever after
  EXPECT_EQ(s.plan_cache_size, 1u);
  EXPECT_GT(s.plan_cache.hit_rate(), 0.5);
}

TEST(ServeSession, KernelErrorsSurfaceThroughFutureNotTerminate) {
  Session session(Cluster{});
  // Rank-4 input: the batcher's geometry check must reject it, fail the
  // future, and leave the worker alive for the next (valid) request.
  TensorF16 bad(Shape{1, 2, 9, 9});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  auto f_bad = session.submit(op, PoolInputs{.in = &bad});
  session.drain();
  EXPECT_THROW(f_bad.get(), Error);
  EXPECT_EQ(session.stats().failed, 1);

  const TensorF16 good = make_input(1, 15, 15, 2);
  auto f_good = session.submit(op, PoolInputs{.in = &good});
  session.drain();
  EXPECT_GT(f_good.get().out.size(), 0);
  EXPECT_EQ(session.stats().completed, 1);
}

TEST(ServeSession, ServeJsonLandsInMetricsRegistryAsSchemaV7) {
  Session session(Cluster{});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 3);
  session.submit(op, PoolInputs{.in = &in}).get();
  session.drain();

  MetricsRegistry reg;
  session.add_metrics(reg);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema_version\":7"), std::string::npos);
  // The v4 host-phase buckets are per-entry fields; the host_ns bucket
  // invariant itself is covered in test_metrics.cc. The v5 "vm" object
  // and its stream buckets are covered in test_vm.cc.
  EXPECT_NE(json.find("\"vm\""), std::string::npos);
  EXPECT_NE(json.find("\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
  // The v3 robustness surface.
  EXPECT_NE(json.find("\"expired\""), std::string::npos);
  EXPECT_NE(json.find("\"shed\""), std::string::npos);
  EXPECT_NE(json.find("\"overload_policy\":\"block\""), std::string::npos);
  EXPECT_NE(json.find("\"resilience\""), std::string::npos);
  EXPECT_NE(json.find("\"watchdog_alarms\""), std::string::npos);
  // The v6 surface: p999 + histogram + exact cross-check inside the
  // latency objects, queue depth, and the request-trace ring counters.
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NE(json.find("\"hist\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"exact\""), std::string::npos);
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"request_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"by_kind\""), std::string::npos);
  // The v7 surface: cluster topology, per-device rows and the link
  // roofline (deep coverage lives in test_cluster.cc).
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"placement\":\"data\""), std::string::npos);
  EXPECT_NE(json.find("\"per_device\""), std::string::npos);
  EXPECT_NE(json.find("\"redistribution\""), std::string::npos);
}

// --- Deadlines -----------------------------------------------------------

TEST(ServeDeadline, ExpiredRequestFailsWithoutDeviceLaunch) {
  Session session(Cluster{});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 1);

  session.pause();  // the deadline lapses while the request sits queued
  auto f = session.submit(op, PoolInputs{.in = &in},
                          SubmitOptions{.deadline_us = 1000});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  session.resume();
  session.drain();

  EXPECT_THROW(f.get(), DeadlineExceeded);
  const SessionStats s = session.stats();
  EXPECT_EQ(s.expired, 1);
  EXPECT_EQ(s.launches, 0);  // the device never ran
  EXPECT_EQ(s.completed, 0);
  EXPECT_EQ(s.failed, 0);  // expiry is its own counter
}

TEST(ServeDeadline, ExpiredRequestNeverFailsItsBatchmates) {
  Session session(Cluster{});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 a = make_input(2, 35, 35, 1);
  const TensorF16 b = make_input(2, 35, 35, 2);
  const TensorF16 doomed_in = make_input(2, 35, 35, 3);

  session.pause();  // same geometry: all three coalesce into one batch
  auto f_a = session.submit(op, PoolInputs{.in = &a});
  auto doomed = session.submit(op, PoolInputs{.in = &doomed_in},
                               SubmitOptions{.deadline_us = 1000});
  auto f_b = session.submit(op, PoolInputs{.in = &b});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  session.resume();
  session.drain();

  EXPECT_THROW(doomed.get(), DeadlineExceeded);
  Device lone;
  lone.set_double_buffer(true);
  expect_same_tensor(f_a.get().out,
                     kernels::run_pool(lone, op, {.in = &a}).out);
  expect_same_tensor(f_b.get().out,
                     kernels::run_pool(lone, op, {.in = &b}).out);
  const SessionStats s = session.stats();
  EXPECT_EQ(s.expired, 1);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.failed, 0);
}

TEST(ServeDeadline, GenerousDeadlineCompletesNormally) {
  Session session(Cluster{});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 4);
  auto f = session.submit(op, PoolInputs{.in = &in},
                          SubmitOptions{.deadline_us = 60'000'000});
  session.drain();
  EXPECT_GT(f.get().out.size(), 0);
  EXPECT_EQ(session.stats().expired, 0);
}

// --- Overload policies ---------------------------------------------------

TEST(ServeOverload, RejectNewFailsTheNewRequest) {
  SessionOptions opts;
  opts.queue_depth = 2;
  opts.overload = OverloadPolicy::kRejectNew;
  Session session(Cluster{}, opts);
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 1);

  session.pause();
  auto f1 = session.submit(op, PoolInputs{.in = &in});
  auto f2 = session.submit(op, PoolInputs{.in = &in});
  auto f3 = session.submit(op, PoolInputs{.in = &in});  // queue is full
  EXPECT_THROW(f3.get(), Overloaded);  // resolved immediately, no blocking

  session.resume();
  session.drain();
  EXPECT_GT(f1.get().out.size(), 0);
  EXPECT_GT(f2.get().out.size(), 0);
  const SessionStats s = session.stats();
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.submitted, 3);
}

TEST(ServeOverload, ShedOldestDropsTheOldestLowestPriority) {
  SessionOptions opts;
  opts.queue_depth = 2;
  opts.overload = OverloadPolicy::kShedOldest;
  Session session(Cluster{}, opts);
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 1);

  session.pause();
  // Oldest but high priority: survives. Second oldest (prio 0) is shed.
  auto keep = session.submit(op, PoolInputs{.in = &in},
                             SubmitOptions{.prio = 1});
  auto victim = session.submit(op, PoolInputs{.in = &in});
  auto newcomer = session.submit(op, PoolInputs{.in = &in});  // full: sheds
  EXPECT_THROW(victim.get(), Overloaded);

  session.resume();
  session.drain();
  EXPECT_GT(keep.get().out.size(), 0);
  EXPECT_GT(newcomer.get().out.size(), 0);
  const SessionStats s = session.stats();
  EXPECT_EQ(s.shed, 1);
  EXPECT_EQ(s.completed, 2);
}

// --- Fault tolerance -----------------------------------------------------

// All cores poisoned for block ids >= 4: any launch spanning more than 4
// (N, C1) blocks dies however it is retried (every redistribution target
// dies too), while launches of <= 4 blocks run fault-free. A fat request
// (6 blocks) coalesced with skinny ones (2 blocks each) therefore fails
// the whole batch -- until bisection isolates it.
TEST(ServeResilience, BisectionIsolatesThePoisonedRequest) {
  SessionOptions opts;
  ResilienceOptions res;
  for (int c = 0; c < 32; ++c) {
    res.plan.core_failures.push_back(CoreFailTrigger{c, 4});
  }
  opts.resilience = res;
  Session session(Cluster(ClusterOptions{.arch = ArchConfig::ascend910()}), opts);
  ASSERT_EQ(session.device().num_cores(), 32);

  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 s1 = make_input(2, 35, 35, 1);
  const TensorF16 s2 = make_input(2, 35, 35, 2);
  const TensorF16 s3 = make_input(2, 35, 35, 3);
  TensorF16 fat(Shape{3, 2, 35, 35, kC0});  // 6 blocks: poisoned
  fat.fill_random_ints(4);

  session.pause();
  auto f1 = session.submit(op, PoolInputs{.in = &s1});
  auto f_fat = session.submit(op, PoolInputs{.in = &fat});
  auto f2 = session.submit(op, PoolInputs{.in = &s2});
  auto f3 = session.submit(op, PoolInputs{.in = &s3});
  session.resume();
  session.drain();

  // The fat request fails alone; its batchmates complete bit-exactly.
  EXPECT_THROW(f_fat.get(), RetryExhausted);
  Device lone;
  lone.set_double_buffer(true);
  expect_same_tensor(f1.get().out,
                     kernels::run_pool(lone, op, {.in = &s1}).out);
  expect_same_tensor(f2.get().out,
                     kernels::run_pool(lone, op, {.in = &s2}).out);
  expect_same_tensor(f3.get().out,
                     kernels::run_pool(lone, op, {.in = &s3}).out);

  const SessionStats s = session.stats();
  EXPECT_EQ(s.completed, 3);
  EXPECT_EQ(s.failed, 1);
  EXPECT_GE(s.bisections, 2);  // full batch split, then the fat half again
  EXPECT_EQ(s.poisoned_requests, 1);
  EXPECT_GE(s.launch_failures, 2);
}

TEST(ServeResilience, QuarantineShrinksTheBatchCapAndCountsDegraded) {
  SessionOptions opts;
  ResilienceOptions res;
  res.plan = FaultPlan::parse("core_fail@2", 7);  // core 2 dies on block 2
  opts.resilience = res;
  Session session(Cluster(ClusterOptions{.arch = ArchConfig::ascend910()}), opts);

  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  TensorF16 in(Shape{2, 2, 35, 35, kC0});  // 4 blocks: core 2 gets one
  in.fill_random_ints(5);
  auto f = session.submit(op, PoolInputs{.in = &in});
  session.drain();

  // The launch survives by quarantining core 2 and redistributing; the
  // result is still bit-identical to a fault-free run.
  Device lone;
  lone.set_double_buffer(true);
  expect_same_tensor(f.get().out,
                     kernels::run_pool(lone, op, {.in = &in}).out);
  const SessionStats s = session.stats();
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.quarantined_cores, 1);
  EXPECT_GE(s.degraded_launches, 1);
  EXPECT_GE(s.faults.cores_quarantined, 1);
  EXPECT_GE(s.faults.blocks_redispatched, 1);
}

// --- Watchdog and bounded drain ------------------------------------------

TEST(ServeWatchdog, SlowLaunchRaisesAnAlarm) {
  SessionOptions opts;
  opts.watchdog_timeout_us = 1;  // every real launch overruns this
  Session session(Cluster{}, opts);
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(4, 71, 71, 6);
  auto f = session.submit(op, PoolInputs{.in = &in});
  session.drain();
  EXPECT_GT(f.get().out.size(), 0);
  EXPECT_GE(session.stats().watchdog_alarms, 1);
}

TEST(ServeDrain, BoundedDrainTimesOutThenSucceeds) {
  Session session(Cluster{});
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  // Enough queued work that the worker cannot possibly retire all of it
  // in the submit-to-drain gap (the host fast path made a single small
  // launch quick enough to lose that race): the bounded drain reports the
  // session still busy instead of blocking forever.
  const TensorF16 in = make_input(32, 95, 95, 7);
  std::vector<std::future<PoolResult>> fs;
  for (int i = 0; i < 8; ++i) {
    fs.push_back(session.submit(op, PoolInputs{.in = &in}));
  }
  EXPECT_FALSE(session.drain(std::chrono::microseconds(1)));
  EXPECT_TRUE(session.drain(std::chrono::microseconds(60'000'000)));
  auto& f = fs.front();
  EXPECT_GT(f.get().out.size(), 0);
}

// --- Teardown and concurrency --------------------------------------------

TEST(ServeTeardown, QueuedRequestsAreCancelledAndEveryFutureResolves) {
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 1);
  std::vector<std::future<PoolResult>> futures;
  {
    Session session(Cluster{});
    session.pause();  // everything stays queued: destruction must cancel
    for (int i = 0; i < 6; ++i) {
      futures.push_back(session.submit(op, PoolInputs{.in = &in}));
    }
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_THROW(f.get(), Cancelled);
  }
}

TEST(ServeTeardown, InFlightWorkCompletesAndEveryFutureResolves) {
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 2);
  std::vector<std::future<PoolResult>> futures;
  {
    Session session(Cluster{});  // not paused: the worker races the destructor
    for (int i = 0; i < 8; ++i) {
      futures.push_back(session.submit(op, PoolInputs{.in = &in}));
    }
  }
  int completed = 0, cancelled = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    try {
      EXPECT_GT(f.get().out.size(), 0);
      completed += 1;
    } catch (const Cancelled&) {
      cancelled += 1;
    }
  }
  EXPECT_EQ(completed + cancelled, 8);  // nothing lost, nothing hung
}

TEST(ServeStress, ManyProducersMixingSubmitAndTrySubmit) {
  SessionOptions opts;
  opts.queue_depth = 4;  // small: the queue genuinely fills under load
  Session session(Cluster{}, opts);
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const TensorF16 in = make_input(1, 15, 15, 3);

  constexpr int kBlockingProducers = 3;
  constexpr int kTryProducers = 2;
  constexpr int kPerProducer = 16;
  std::mutex collect_mu;
  std::vector<std::future<PoolResult>> futures;
  std::atomic<int> refused{0};

  std::vector<std::thread> producers;
  for (int t = 0; t < kBlockingProducers; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto f = session.submit(op, PoolInputs{.in = &in});
        std::lock_guard<std::mutex> lock(collect_mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (int t = 0; t < kTryProducers; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::future<PoolResult> f;
        if (session.try_submit(op, PoolInputs{.in = &in}, &f)) {
          std::lock_guard<std::mutex> lock(collect_mu);
          futures.push_back(std::move(f));
        } else {
          refused.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  session.drain();

  for (auto& f : futures) EXPECT_GT(f.get().out.size(), 0);
  const SessionStats s = session.stats();
  EXPECT_EQ(s.completed, static_cast<std::int64_t>(futures.size()));
  EXPECT_EQ(s.completed + refused.load(),
            kBlockingProducers * kPerProducer + kTryProducers * kPerProducer);
}

TEST(ServeTrace, ParsesOpsGeometriesAndRepeats) {
  const auto entries = parse_trace(
      "# comment line\n"
      "op=maxpool n=2 c1=4 ih=35 iw=35 k=3 s=2 impl=im2col x=3\n"
      "\n"
      "op=maxpool_bwd c1=2 ih=19 iw=19 k=3 s=2 merge=col2im\n"
      "op=global_avgpool c1=4 ih=8 iw=8\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].op.kind, PoolOpKind::kMaxFwd);
  EXPECT_EQ(entries[0].n, 2);
  EXPECT_EQ(entries[0].repeat, 3);
  EXPECT_EQ(entries[0].op.fwd, akg::PoolImpl::kIm2col);
  EXPECT_EQ(entries[1].op.kind, PoolOpKind::kMaxBwd);
  EXPECT_EQ(entries[1].op.merge, kernels::MergeImpl::kCol2im);
  EXPECT_EQ(entries[2].op.kind, PoolOpKind::kGlobalAvg);

  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 bogus=1\n"), Error);
  EXPECT_THROW(parse_trace("n=1 ih=9 iw=9\n"), Error);  // missing op=
  EXPECT_THROW(parse_trace("op=maxpool k=3 s=2\n"), Error);  // no geometry
}

TEST(ServeTrace, DeadlineAndPriorityFieldsParse) {
  const auto entries = parse_trace(
      "op=maxpool c1=2 ih=21 iw=21 k=3 s=2 deadline_us=5000 prio=2\n"
      "op=avgpool c1=2 ih=21 iw=21 k=3 s=2\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].deadline_us, 5000);
  EXPECT_EQ(entries[0].prio, 2);
  EXPECT_EQ(entries[1].deadline_us, 0);  // optional: defaults apply
  EXPECT_EQ(entries[1].prio, 0);

  // Malformed values and a negative budget are errors.
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 deadline_us=soon\n"),
               Error);
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 deadline_us=-1\n"),
               Error);
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 prio=high\n"),
               Error);
}

TEST(ServeTrace, ShardFieldParses) {
  const auto entries = parse_trace(
      "op=maxpool c1=2 ih=21 iw=21 k=3 s=2 shard=3\n"
      "op=avgpool c1=2 ih=21 iw=21 k=3 s=2\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].shard, 3);
  EXPECT_EQ(entries[1].shard, -1);  // optional: auto placement

  // Malformed values and a negative pin are errors (the device-count
  // upper bound is enforced by the session, not the parser).
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 shard=first\n"),
               Error);
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 shard=-1\n"),
               Error);
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 shard=-7\n"),
               Error);
}

TEST(ServeTrace, DuplicateAndUnknownKeysAreErrors) {
  // A key repeated on one line is ambiguous -- reject, don't last-wins.
  EXPECT_THROW(parse_trace("op=maxpool op=avgpool ih=9 iw=9 k=3 s=2\n"),
               Error);
  EXPECT_THROW(parse_trace("op=maxpool ih=9 ih=11 iw=9 k=3 s=2\n"), Error);
  EXPECT_THROW(
      parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 deadline_us=1 deadline_us=2\n"),
      Error);
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 shard=0 shard=1\n"),
               Error);
  // Unknown keys stay an error (no silent typo tolerance).
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 deadline=5\n"),
               Error);
}

TEST(ServeTrace, TruncatedLinesAreErrors) {
  // A line cut mid-token must not silently drop the fragment.
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=\n"), Error);  // cut value
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw\n"), Error);   // cut token
  EXPECT_THROW(parse_trace("op=\n"), Error);                  // empty value
  EXPECT_THROW(parse_trace("=3\n"), Error);                   // empty key
  // A file truncated without its final newline still parses the tokens
  // it has -- and still rejects the dangling fragment.
  EXPECT_THROW(parse_trace("op=maxpool ih=9 iw=9 k=3 s=2 x"), Error);
  const auto ok = parse_trace("op=maxpool ih=9 iw=9 k=3 s=2");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].ih, 9);
}

TEST(ServeTrace, ToLineRoundTripsThroughParse) {
  const auto entries = parse_trace(
      "op=maxpool n=2 c1=4 ih=35 iw=35 kh=3 kw=2 sh=2 sw=1 pt=1 pb=0 pl=1 "
      "pr=0 impl=im2col x=3 deadline_us=500 prio=2 shard=1\n"
      "op=avgpool c1=2 ih=21 iw=21 k=3 s=2 p=1 impl=expansion\n"
      "op=maxpool_bwd c1=2 ih=19 iw=19 k=3 s=2 merge=col2im\n"
      "op=avgpool_bwd c1=2 ih=19 iw=19 k=2 s=2 merge=vadd\n"
      "op=global_avgpool c1=4 ih=8 iw=8\n");
  std::string text;
  for (const auto& e : entries) text += to_line(e) + "\n";
  const auto reparsed = parse_trace(text);
  ASSERT_EQ(reparsed.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& a = entries[i];
    const auto& b = reparsed[i];
    EXPECT_EQ(a.op.kind, b.op.kind) << "line " << i;
    EXPECT_EQ(a.op.fwd, b.op.fwd) << "line " << i;
    EXPECT_EQ(a.op.merge, b.op.merge) << "line " << i;
    EXPECT_EQ(a.op.window.kh, b.op.window.kh) << "line " << i;
    EXPECT_EQ(a.op.window.kw, b.op.window.kw) << "line " << i;
    EXPECT_EQ(a.op.window.sh, b.op.window.sh) << "line " << i;
    EXPECT_EQ(a.op.window.sw, b.op.window.sw) << "line " << i;
    EXPECT_EQ(a.op.window.pt, b.op.window.pt) << "line " << i;
    EXPECT_EQ(a.op.window.pb, b.op.window.pb) << "line " << i;
    EXPECT_EQ(a.op.window.pl, b.op.window.pl) << "line " << i;
    EXPECT_EQ(a.op.window.pr, b.op.window.pr) << "line " << i;
    EXPECT_EQ(a.n, b.n) << "line " << i;
    EXPECT_EQ(a.c1, b.c1) << "line " << i;
    EXPECT_EQ(a.ih, b.ih) << "line " << i;
    EXPECT_EQ(a.iw, b.iw) << "line " << i;
    EXPECT_EQ(a.repeat, b.repeat) << "line " << i;
    EXPECT_EQ(a.deadline_us, b.deadline_us) << "line " << i;
    EXPECT_EQ(a.prio, b.prio) << "line " << i;
    EXPECT_EQ(a.shard, b.shard) << "line " << i;
  }
}

TEST(ServeTrace, MaterializedRequestsServeEndToEnd) {
  const auto entries = parse_trace(
      "op=maxpool c1=2 ih=21 iw=21 k=3 s=2 impl=auto\n"
      "op=avgpool_bwd c1=2 ih=19 iw=19 k=3 s=2 merge=vadd\n");
  Session session(Cluster{});
  std::vector<MaterializedRequest> reqs;
  std::vector<std::future<PoolResult>> futures;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    reqs.push_back(materialize(entries[i], /*seed=*/i + 1));
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    futures.push_back(session.submit(entries[i].op, reqs[i].inputs()));
  }
  session.drain();
  EXPECT_GT(futures[0].get().out.size(), 0);
  EXPECT_GT(futures[1].get().grad_in.size(), 0);
}

// The Pipeline per-layer override: a layer with an explicit PoolOp runs
// that exact descriptor regardless of the stack choice.
TEST(PipelineOverride, PerLayerPoolOpWinsOverStack) {
  const std::int64_t c1 = 2, h = 21;
  TensorF16 in(Shape{1, c1, h, h, kC0});
  in.fill_random_ints(13);
  const Window2d w = Window2d::pool(3, 2);

  nets::Pipeline plain;
  plain.maxpool(w);
  nets::Pipeline overridden;
  overridden.maxpool(kernels::PoolOp{.kind = kernels::PoolOpKind::kMaxFwd,
                                     .window = w,
                                     .fwd = akg::PoolImpl::kIm2col});

  Device d1, d2;
  // Standard stack would lower direct; the override pins im2col. Cycle
  // counts must match the accelerated stack exactly.
  const auto want = plain.run(d1, in, nets::PoolingStack::kAccelerated);
  const auto got = overridden.run(d2, in, nets::PoolingStack::kStandard);
  ASSERT_EQ(got.layers.size(), 1u);
  EXPECT_EQ(got.layers[0].cycles, want.layers[0].cycles);
  expect_same_tensor(got.out, want.out);
}

TEST(PipelineOverride, MismatchedKindIsRejected) {
  nets::Pipeline p;
  EXPECT_THROW(p.maxpool(kernels::PoolOp{.kind = kernels::PoolOpKind::kAvgFwd,
                                         .window = Window2d::pool(3, 2)}),
               Error);
}

}  // namespace
}  // namespace davinci::serve
