// Tests for convolution backward-input: the Col2Im instruction at its
// original job, validated against the textbook fp32 reference (integer
// data keeps the whole chain fp16-exact).
#include "kernels/conv2d_bwd.h"

#include <gtest/gtest.h>

#include "common/align.h"
#include "kernels/conv2d.h"
#include "ref/conv_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using kernels::MergeImpl;

// Rounds fp32 through fp16 so the reference sees the kernel's operand
// values.
TensorF32 round_f16(const TensorF32& t) {
  TensorF32 out(t.shape());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    out.flat(i) = Float16(t.flat(i)).to_float();
  }
  return out;
}

void check_bwd(std::int64_t c, std::int64_t cout, std::int64_t h,
               std::int64_t w_, const Window2d& w, std::uint64_t seed) {
  TensorF32 weights(Shape{cout, c, w.kh, w.kw});
  weights.fill_random_ints(seed, -2, 2);
  TensorF32 grad_nchw(Shape{1, cout, w.out_h(h), w.out_w(w_)});
  grad_nchw.fill_random_ints(seed + 1, -2, 2);

  Device dev;
  const TensorF16 grad = nchw_to_nc1hwc0(grad_nchw);
  const TensorF32 want = ref::conv2d_backward_input_nchw(
      round_f16(grad_nchw), round_f16(weights), w, h, w_);

  for (MergeImpl m : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto got = kernels::conv2d_backward_input(dev, grad, weights, w, h, w_, m);
    ASSERT_EQ(got.grad_in.shape(), Shape({1, c1_of(c), h, w_, kC0}));
    const TensorF32 got32 = nc1hwc0_to_nchw(got.grad_in, c);
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got32.flat(i), want.flat(i))
          << kernels::to_string(m) << " element " << i;
    }
  }
}

TEST(Conv2dBackward, SingleBlockStride1) {
  check_bwd(16, 16, 8, 8, Window2d::pool(3, 1), 601);
}

TEST(Conv2dBackward, OverlappingStride2) {
  check_bwd(16, 16, 11, 11, Window2d::pool(3, 2), 602);
}

TEST(Conv2dBackward, NonOverlapping) {
  check_bwd(16, 16, 12, 12, Window2d::pool(2, 2), 603);
}

TEST(Conv2dBackward, MultipleChannelBlocks) {
  check_bwd(32, 16, 9, 9, Window2d::pool(3, 2), 604);
}

TEST(Conv2dBackward, MultipleOutputBlocks) {
  check_bwd(16, 32, 9, 9, Window2d::pool(3, 2), 605);
}

TEST(Conv2dBackward, PartialBlocks) {
  check_bwd(20, 10, 8, 8, Window2d::pool(2, 1), 606);
}

TEST(Conv2dBackward, AsymmetricWindow) {
  Window2d w;
  w.kh = 2;
  w.kw = 3;
  w.sh = 2;
  w.sw = 1;
  check_bwd(16, 16, 9, 12, w, 607);
}

TEST(Conv2dBackward, WithPadding) {
  Window2d w = Window2d::pool(3, 1);
  w.pt = w.pb = w.pl = w.pr = 1;
  check_bwd(16, 16, 7, 7, w, 608);
}

TEST(Conv2dBackward, TiledWithSeams) {
  // Large enough that the patch dimension tiles against L0A and adjacent
  // tiles share Kh - Sh input rows.
  check_bwd(16, 16, 41, 41, Window2d::pool(3, 2), 609);
}

TEST(Conv2dBackward, Col2imBeatsVadd) {
  // The Figure-7c comparison transplanted to Col2Im's original workload.
  TensorF32 weights(Shape{16, 16, 3, 3});
  weights.fill_random_ints(610, -2, 2);
  const Window2d w = Window2d::pool(3, 2);
  TensorF32 grad_nchw(Shape{1, 16, 17, 17});
  grad_nchw.fill_random_ints(611, -2, 2);
  Device dev;
  const TensorF16 grad = nchw_to_nc1hwc0(grad_nchw);
  auto vadd = kernels::conv2d_backward_input(dev, grad, weights, w, 35, 35,
                                             MergeImpl::kVadd);
  auto col2im = kernels::conv2d_backward_input(dev, grad, weights, w, 35, 35,
                                               MergeImpl::kCol2im);
  EXPECT_LT(col2im.cycles(), vadd.cycles());
}

TEST(Conv2dBackward, RoundTripGradientCheck) {
  // Linearity check: for conv with a single centred delta weight, the
  // backward pass must place each gradient value at the patch position
  // the forward pass read it from.
  const Window2d w = Window2d::pool(3, 3);  // disjoint patches
  TensorF32 weights(Shape{16, 16, 3, 3});
  weights.fill(0.0f);
  for (std::int64_t f = 0; f < 16; ++f) {
    weights.at(f, f, std::int64_t{1}, std::int64_t{1}) = 1.0f;
  }
  TensorF32 grad_nchw(Shape{1, 16, 3, 3});
  grad_nchw.fill_random_ints(612, -3, 3);
  Device dev;
  const TensorF16 grad = nchw_to_nc1hwc0(grad_nchw);
  auto got = kernels::conv2d_backward_input(dev, grad, weights, w, 9, 9,
                                            MergeImpl::kCol2im);
  const TensorF32 got32 = nc1hwc0_to_nchw(got.grad_in, 16);
  for (std::int64_t ch = 0; ch < 16; ++ch) {
    for (std::int64_t i = 0; i < 3; ++i) {
      for (std::int64_t j = 0; j < 3; ++j) {
        EXPECT_EQ(got32.at(std::int64_t{0}, ch, i * 3 + 1, j * 3 + 1),
                  grad_nchw.at(std::int64_t{0}, ch, i, j));
      }
    }
  }
}

TEST(Conv2dBackward, TransposedPackingLayout) {
  const Window2d w = Window2d::pool(2, 1);
  TensorF32 weights(Shape{18, 17, 2, 2});
  weights.fill(0.0f);
  weights.at(std::int64_t{17}, std::int64_t{16}, std::int64_t{1},
             std::int64_t{0}) = 5.0f;
  const TensorF16 packed =
      kernels::pack_conv_weights_transposed(weights, w, 2);
  // fb = 17/16 = 1, row r = 1; kb = (c1=1, kh=1, kw=0) = (1*2+1)*2+0 = 6,
  // col j = 0.
  const std::int64_t k16 = 2 * 2 * 2;
  const std::int64_t idx = (1 * k16 + 6) * kFractalElems + 1 * kC0 + 0;
  EXPECT_EQ(packed.flat(idx).to_float(), 5.0f);
  float total = 0;
  for (std::int64_t i = 0; i < packed.size(); ++i) {
    total += packed.flat(i).to_float();
  }
  EXPECT_EQ(total, 5.0f);
}

TEST(Conv2dBackward, ForwardBackwardDot) {
  // <conv(x), g> == <x, conv_backward_input(g)> -- adjointness of the
  // forward and backward operators, in fp32 on integer data.
  const Window2d w = Window2d::pool(3, 2);
  TensorF32 x(Shape{1, 16, 9, 9});
  x.fill_random_ints(613, -2, 2);
  TensorF32 weights(Shape{16, 16, 3, 3});
  weights.fill_random_ints(614, -1, 1);
  TensorF32 g(Shape{1, 16, 4, 4});
  g.fill_random_ints(615, -2, 2);

  Device dev;
  auto fwd = kernels::conv2d_cube(dev, nchw_to_nc1hwc0(x), weights, w);
  auto bwd = kernels::conv2d_backward_input(dev, nchw_to_nc1hwc0(g), weights,
                                            w, 9, 9, MergeImpl::kCol2im);
  const TensorF32 y = nc1hwc0_to_nchw(fwd.out, 16);
  const TensorF32 dx = nc1hwc0_to_nchw(bwd.grad_in, 16);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    lhs += static_cast<double>(y.flat(i)) * static_cast<double>(g.flat(i));
  }
  for (std::int64_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x.flat(i)) * static_cast<double>(dx.flat(i));
  }
  EXPECT_EQ(lhs, rhs);
}

}  // namespace
}  // namespace davinci
