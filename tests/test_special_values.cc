// Special-value behaviour end to end: negative-only inputs, fp16
// extremes, signed zeros, and NaN policy through the pooling kernels.
#include <gtest/gtest.h>

#include <limits>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;

TEST(SpecialValues, AllNegativeInputUnpadded) {
  // Without padding the maximum of all-negative data stays negative; the
  // -65504 initializer must never leak into the output.
  Device dev;
  TensorF16 in(Shape{1, 1, 9, 9, kC0});
  Xoshiro256 rng(11);
  for (std::int64_t i = 0; i < in.size(); ++i) {
    in.flat(i) = Float16(-1.0f - static_cast<float>(rng.next_below(100)));
  }
  const Window2d w = Window2d::pool(3, 2);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col,
                        PoolImpl::kExpansion, PoolImpl::kXYSplit}) {
    auto got = kernels::maxpool_forward(dev, in, w, impl);
    for (std::int64_t i = 0; i < got.out.size(); ++i) {
      EXPECT_LT(got.out.flat(i).to_float(), 0.0f) << akg::to_string(impl);
      EXPECT_GT(got.out.flat(i).to_float(), -102.0f);
    }
  }
}

TEST(SpecialValues, MaxFiniteValuesSurvive) {
  Device dev;
  TensorF16 in(Shape{1, 1, 8, 8, kC0});
  in.fill(Float16(1.0f));
  for (std::int64_t c = 0; c < kC0; ++c) {
    in.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{3}, std::int64_t{3},
          c) = Float16::max_finite();
  }
  const Window2d w = Window2d::pool(2, 2);
  auto got = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  EXPECT_EQ(got.out
                .at(std::int64_t{0}, std::int64_t{0}, std::int64_t{1},
                    std::int64_t{1}, std::int64_t{0})
                .to_float(),
            65504.0f);
}

TEST(SpecialValues, SignedZerosCompareEqual) {
  // A patch of {-0, +0}: the max is zero either way and the eq-mask marks
  // both positions (+0 == -0 in IEEE comparison).
  TensorF16 in(Shape{1, 1, 2, 2, kC0});
  in.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
        std::int64_t{0}) = Float16(-0.0f);
  const Window2d w = Window2d::pool(2, 2);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  float marked = 0;
  for (std::int64_t kh = 0; kh < 2; ++kh) {
    for (std::int64_t kw = 0; kw < 2; ++kw) {
      marked += mask.at(std::int64_t{0}, std::int64_t{0}, kh, kw,
                        std::int64_t{0}, std::int64_t{0})
                    .to_float();
    }
  }
  EXPECT_EQ(marked, 4.0f);
}

TEST(SpecialValues, NanLosesAgainstNumbersInMax) {
  // Hardware vmax "number wins" semantics: a NaN lane never becomes the
  // patch maximum when any finite value is present.
  Device dev;
  TensorF16 in(Shape{1, 1, 4, 4, kC0});
  in.fill(Float16(2.0f));
  for (std::int64_t c = 0; c < kC0; ++c) {
    in.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{1}, std::int64_t{1},
          c) = Float16(std::numeric_limits<float>::quiet_NaN());
  }
  const Window2d w = Window2d::pool(2, 2);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col}) {
    auto got = kernels::maxpool_forward(dev, in, w, impl);
    for (std::int64_t i = 0; i < got.out.size(); ++i) {
      EXPECT_FALSE(got.out.flat(i).is_nan()) << akg::to_string(impl);
      EXPECT_EQ(got.out.flat(i).to_float(), 2.0f);
    }
  }
}

TEST(SpecialValues, LargeMagnitudeAvgpoolSaturatesGracefully) {
  // Summing Kh*Kw max-finite values overflows fp16 to +inf before the
  // division; the kernel and the reference must agree on that behaviour.
  Device dev;
  TensorF16 in(Shape{1, 1, 4, 4, kC0});
  in.fill(Float16::max_finite());
  const Window2d w = Window2d::pool(2, 2);
  auto got = kernels::avgpool_forward(dev, in, w, PoolImpl::kIm2col);
  const TensorF16 want = ref::avgpool_fwd(in, w);
  testutil::expect_equal_f16(got.out, want, "saturating avgpool");
  EXPECT_TRUE(got.out.flat(0).is_inf());
}

TEST(SpecialValues, SubnormalInputsPreserved) {
  Device dev;
  TensorF16 in(Shape{1, 1, 4, 4, kC0});
  const Float16 tiny = Float16::from_bits(0x0001);  // smallest subnormal
  in.fill(Float16(-1.0f));
  for (std::int64_t c = 0; c < kC0; ++c) {
    in.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{0}, std::int64_t{1},
          c) = tiny;
  }
  const Window2d w = Window2d::pool(2, 2);
  auto got = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  EXPECT_EQ(got.out.flat(0).bits(), tiny.bits());
}

TEST(SpecialValues, BackwardWithNegativeGradients) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 971);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 1, 4, 4, kC0});
  grad.fill_random_ints(972, -8, -1);  // strictly negative
  const TensorF16 want = ref::maxpool_bwd(mask, grad, w, 9, 9);
  auto got = kernels::maxpool_backward(dev, mask, grad, w, 9, 9,
                                       kernels::MergeImpl::kCol2im);
  testutil::expect_equal_f16(got.grad_in, want, "negative gradients");
}

}  // namespace
}  // namespace davinci
