// Unit tests for the Vector Unit: instruction semantics, mask gating,
// repeat strides, the reduction idiom, and cycle accounting.
#include "sim/vector_unit.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/check.h"
#include "sim/scratch.h"

namespace davinci {
namespace {

class VectorUnitTest : public ::testing::Test {
 protected:
  VectorUnitTest() : ub_(BufferKind::kUnified, 64 * 1024), vec_(arch_, cost_, &stats_) {}

  Span<Float16> alloc_filled(std::int64_t n, float v) {
    auto s = ub_.alloc<Float16>(n);
    for (std::int64_t i = 0; i < n; ++i) s.at(i) = Float16(v);
    return s;
  }

  ArchConfig arch_;
  CostModel cost_;
  CycleStats stats_;
  ScratchBuffer ub_;
  VectorUnit vec_;
};

TEST_F(VectorUnitTest, MaskFirstN) {
  EXPECT_EQ(VecMask::first_n(0).count(), 0);
  EXPECT_EQ(VecMask::first_n(16).count(), 16);
  EXPECT_EQ(VecMask::first_n(64).count(), 64);
  EXPECT_EQ(VecMask::first_n(100).count(), 100);
  EXPECT_EQ(VecMask::first_n(128).count(), 128);
  EXPECT_EQ(VecMask::full().count(), 128);
  EXPECT_TRUE(VecMask::first_n(17).lane(16));
  EXPECT_FALSE(VecMask::first_n(17).lane(17));
  EXPECT_TRUE(VecMask::first_n(128).lane(127));
  EXPECT_THROW(VecMask::first_n(129), Error);
}

TEST_F(VectorUnitTest, BinaryOpsElementwise) {
  auto a = alloc_filled(128, 3.0f);
  auto b = alloc_filled(128, 4.0f);
  auto d = ub_.alloc<Float16>(128);
  vec_.binary(VecOp::kAdd, d, a, b, VecConfig::flat(1));
  EXPECT_EQ(d.at(0).to_float(), 7.0f);
  EXPECT_EQ(d.at(127).to_float(), 7.0f);
  vec_.binary(VecOp::kMul, d, a, b, VecConfig::flat(1));
  EXPECT_EQ(d.at(50).to_float(), 12.0f);
  vec_.binary(VecOp::kSub, d, a, b, VecConfig::flat(1));
  EXPECT_EQ(d.at(3).to_float(), -1.0f);
  vec_.binary(VecOp::kMax, d, a, b, VecConfig::flat(1));
  EXPECT_EQ(d.at(9).to_float(), 4.0f);
  vec_.binary(VecOp::kMin, d, a, b, VecConfig::flat(1));
  EXPECT_EQ(d.at(9).to_float(), 3.0f);
  vec_.binary(VecOp::kDiv, d, b, a, VecConfig::flat(1));
  EXPECT_NEAR(d.at(0).to_float(), 4.0f / 3.0f, 1e-3f);
}

TEST_F(VectorUnitTest, MaskGatesLanes) {
  auto a = alloc_filled(128, 1.0f);
  auto b = alloc_filled(128, 2.0f);
  auto d = alloc_filled(128, -9.0f);
  VecConfig cfg = VecConfig::flat(1);
  cfg.mask = VecMask::first_n(16);
  vec_.binary(VecOp::kAdd, d, a, b, cfg);
  EXPECT_EQ(d.at(15).to_float(), 3.0f);
  EXPECT_EQ(d.at(16).to_float(), -9.0f);  // untouched
}

TEST_F(VectorUnitTest, RepeatAdvancesByStrides) {
  auto a = alloc_filled(256, 1.0f);
  auto b = alloc_filled(256, 2.0f);
  auto d = alloc_filled(256, 0.0f);
  VecConfig cfg = VecConfig::flat(2);  // default strides 128
  vec_.binary(VecOp::kAdd, d, a, b, cfg);
  EXPECT_EQ(d.at(0).to_float(), 3.0f);
  EXPECT_EQ(d.at(255).to_float(), 3.0f);
}

TEST_F(VectorUnitTest, ReductionIdiomWithZeroDstStride) {
  // dst stride 0 with dst == src0 accumulates across repeats -- the
  // "vmax uses repetition to obtain the maximum across Kw" idiom.
  auto src = ub_.alloc<Float16>(3 * 16);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 16; ++c) {
      src.at(r * 16 + c) = Float16(static_cast<float>(r == 1 ? 10 + c : c));
    }
  }
  auto acc = alloc_filled(16, -100.0f);
  VecConfig cfg;
  cfg.mask = VecMask::first_n(16);
  cfg.repeat = 3;
  cfg.dst_rep_stride = 0;
  cfg.src0_rep_stride = 0;
  cfg.src1_rep_stride = 16;
  vec_.binary(VecOp::kMax, acc, acc, src, cfg);
  for (int c = 0; c < 16; ++c) {
    EXPECT_EQ(acc.at(c).to_float(), static_cast<float>(10 + c));
  }
}

TEST_F(VectorUnitTest, DupAddsMuls) {
  auto d = ub_.alloc<Float16>(128);
  vec_.dup(d, Float16(5.0f), VecConfig::flat(1));
  EXPECT_EQ(d.at(77).to_float(), 5.0f);
  auto s = alloc_filled(128, 3.0f);
  vec_.adds(d, s, Float16(2.0f), VecConfig::flat(1));
  EXPECT_EQ(d.at(0).to_float(), 5.0f);
  vec_.muls(d, s, Float16(4.0f), VecConfig::flat(1));
  EXPECT_EQ(d.at(0).to_float(), 12.0f);
}

TEST_F(VectorUnitTest, CmpvEqProducesIndicator) {
  auto a = alloc_filled(128, 1.0f);
  auto b = alloc_filled(128, 1.0f);
  b.at(5) = Float16(2.0f);
  auto d = ub_.alloc<Float16>(128);
  vec_.cmpv_eq(d, a, b, VecConfig::flat(1));
  EXPECT_EQ(d.at(0).to_float(), 1.0f);
  EXPECT_EQ(d.at(5).to_float(), 0.0f);
}

TEST_F(VectorUnitTest, SelSelectsByCondition) {
  auto cond = alloc_filled(128, 0.0f);
  cond.at(2) = Float16(1.0f);
  auto a = alloc_filled(128, 10.0f);
  auto b = alloc_filled(128, 20.0f);
  auto d = ub_.alloc<Float16>(128);
  vec_.sel(d, cond, a, b, VecConfig::flat(1));
  EXPECT_EQ(d.at(2).to_float(), 10.0f);
  EXPECT_EQ(d.at(3).to_float(), 20.0f);
}

TEST_F(VectorUnitTest, CycleAccounting) {
  auto a = alloc_filled(256, 1.0f);
  auto d = ub_.alloc<Float16>(256);
  VecConfig cfg = VecConfig::flat(2);
  cfg.mask = VecMask::first_n(16);
  vec_.binary(VecOp::kAdd, d, a, a, cfg);
  EXPECT_EQ(stats_.vector_instrs, 1);
  EXPECT_EQ(stats_.vector_repeats, 2);
  EXPECT_EQ(stats_.vector_active_lanes, 32);
  EXPECT_EQ(stats_.vector_cycles, cost_.vec_issue_overhead + 2);
  EXPECT_NEAR(stats_.lane_utilization(), 16.0 / 128.0, 1e-9);
}

TEST_F(VectorUnitTest, RejectsNonUbOperands) {
  ScratchBuffer l1(BufferKind::kL1, 1024);
  auto bad = l1.alloc<Float16>(128);
  auto ok = ub_.alloc<Float16>(128);
  EXPECT_THROW(vec_.binary(VecOp::kAdd, ok, ok, bad, VecConfig::flat(1)),
               Error);
  EXPECT_THROW(vec_.dup(bad, Float16(), VecConfig::flat(1)), Error);
}

TEST_F(VectorUnitTest, RejectsRepeatOutOfRange) {
  auto a = ub_.alloc<Float16>(128);
  VecConfig cfg = VecConfig::flat(256);  // max_repeat is 255
  EXPECT_THROW(vec_.dup(a, Float16(), cfg), Error);
  cfg.repeat = 0;
  EXPECT_THROW(vec_.dup(a, Float16(), cfg), Error);
}

TEST_F(VectorUnitTest, OutOfBoundsActiveLaneThrows) {
  auto a = ub_.alloc<Float16>(100);  // < 128
  EXPECT_THROW(vec_.dup(a, Float16(), VecConfig::flat(1)), Error);
  // But with a mask covering only the first 100 lanes it is fine.
  VecConfig cfg = VecConfig::flat(1);
  cfg.mask = VecMask::first_n(100);
  vec_.dup(a, Float16(3.0f), cfg);
  EXPECT_EQ(a.at(99).to_float(), 3.0f);
}

// The prefix-mask fast path orders vmax/vmin by a signed-magnitude bits
// key instead of converting to float. Sweep a value set covering every
// encoding class (zeros of both signs, subnormals, normals, infinities,
// NaN) against the fmax16/fmin16 reference -- results must match
// bit-for-bit, including the which-operand-wins tie rule for -0/+0 and
// the "number wins" NaN rule.
TEST_F(VectorUnitTest, MaxMinFastPathMatchesReferenceOnSpecialValues) {
  const std::uint16_t specials[] = {
      0x0000, 0x8000,          // +0, -0
      0x0001, 0x8001, 0x03FF,  // subnormals
      0x0400, 0x8400,          // smallest normals
      0x3C00, 0xBC00,          // +-1
      0x7BFF, 0xFBFF,          // +-max finite
      0x7C00, 0xFC00,          // +-inf
      0x7C01, 0x7E00, 0xFE00,  // NaNs
  };
  const int n = static_cast<int>(std::size(specials));
  auto a = ub_.alloc<Float16>(128);
  auto b = ub_.alloc<Float16>(128);
  auto d = ub_.alloc<Float16>(128);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const Float16 x = Float16::from_bits(specials[i]);
      const Float16 y = Float16::from_bits(specials[j]);
      for (int k = 0; k < 128; ++k) {
        a.at(k) = x;
        b.at(k) = y;
      }
      vec_.binary(VecOp::kMax, d, a, b, VecConfig::flat(1));
      EXPECT_EQ(d.at(0).bits(), fmax16(x, y).bits())
          << "vmax " << specials[i] << " vs " << specials[j];
      vec_.binary(VecOp::kMin, d, a, b, VecConfig::flat(1));
      EXPECT_EQ(d.at(0).bits(), fmin16(x, y).bits())
          << "vmin " << specials[i] << " vs " << specials[j];
    }
  }
}

}  // namespace
}  // namespace davinci
