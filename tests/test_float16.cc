// Unit tests for the from-scratch IEEE-754 binary16 implementation.
#include "common/float16.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace davinci {
namespace {

TEST(Float16, ZeroAndSigns) {
  EXPECT_EQ(Float16(0.0f).bits(), 0x0000u);
  EXPECT_EQ(Float16(-0.0f).bits(), 0x8000u);
  EXPECT_TRUE(Float16(0.0f) == Float16(-0.0f));
  EXPECT_TRUE(Float16(0.0f).is_zero());
  EXPECT_TRUE(Float16(-0.0f).is_zero());
}

TEST(Float16, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(Float16(static_cast<float>(i)).to_float(),
              static_cast<float>(i))
        << "integer " << i;
  }
}

TEST(Float16, KnownBitPatterns) {
  EXPECT_EQ(Float16(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(Float16(-1.0f).bits(), 0xBC00u);
  EXPECT_EQ(Float16(2.0f).bits(), 0x4000u);
  EXPECT_EQ(Float16(0.5f).bits(), 0x3800u);
  EXPECT_EQ(Float16(65504.0f).bits(), 0x7BFFu);  // max finite
  EXPECT_EQ(Float16(0.0009765625f).bits(), 0x1400u);  // 2^-10
}

TEST(Float16, OverflowToInfinity) {
  EXPECT_TRUE(Float16(65536.0f).is_inf());
  EXPECT_TRUE(Float16(1e30f).is_inf());
  EXPECT_TRUE(Float16(-1e30f).is_inf());
  EXPECT_LT(Float16(-1e30f).to_float(), 0.0f);
  // 65504 is the largest finite value; 65520 is the rounding boundary.
  EXPECT_FALSE(Float16(65504.0f).is_inf());
  EXPECT_TRUE(Float16(65520.0f).is_inf());
  EXPECT_FALSE(Float16(65519.996f).is_inf());
}

TEST(Float16, Subnormals) {
  const float min_sub = std::ldexp(1.0f, -24);  // smallest positive subnormal
  EXPECT_EQ(Float16(min_sub).bits(), 0x0001u);
  EXPECT_EQ(Float16(min_sub).to_float(), min_sub);
  const float below_half_min = std::ldexp(1.0f, -26);
  EXPECT_TRUE(Float16(below_half_min).is_zero());  // rounds to zero
  // Largest subnormal: (1023/1024) * 2^-14.
  const float max_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(Float16(max_sub).bits(), 0x03FFu);
}

TEST(Float16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10; ties to even
  // rounds down to 1.0.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(Float16(halfway).bits(), 0x3C00u);
  // 1 + 3 * 2^-11 is halfway between 1 + 2^-10 and 1 + 2^-9; ties to even
  // rounds up to 1 + 2^-9 (even mantissa).
  const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(Float16(halfway2).bits(), 0x3C02u);
  // Just above halfway rounds up.
  EXPECT_EQ(Float16(halfway + 1e-6f).bits(), 0x3C01u);
}

TEST(Float16, NanHandling) {
  const Float16 nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.is_nan());
  EXPECT_FALSE(nan == nan);
  EXPECT_TRUE(std::isnan(nan.to_float()));
}

TEST(Float16, InfinityRoundTrip) {
  const Float16 inf = Float16::infinity();
  EXPECT_TRUE(inf.is_inf());
  EXPECT_TRUE(std::isinf(inf.to_float()));
  EXPECT_GT(inf.to_float(), 0.0f);
  EXPECT_TRUE(Float16(inf.to_float()).is_inf());
  EXPECT_EQ(Float16::neg_infinity().to_float(),
            -std::numeric_limits<float>::infinity());
}

TEST(Float16, RoundTripAllBitPatterns) {
  // Every finite half value must survive half -> float -> half exactly.
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const Float16 h = Float16::from_bits(static_cast<std::uint16_t>(b));
    if (h.is_nan()) continue;
    const Float16 back(h.to_float());
    EXPECT_EQ(back.bits(), h.bits()) << "bits " << b;
  }
}

TEST(Float16, ArithmeticExactOnSmallIntegers) {
  EXPECT_EQ((Float16(3.0f) + Float16(4.0f)).to_float(), 7.0f);
  EXPECT_EQ((Float16(10.0f) - Float16(4.0f)).to_float(), 6.0f);
  EXPECT_EQ((Float16(12.0f) * Float16(12.0f)).to_float(), 144.0f);
  EXPECT_EQ((Float16(9.0f) / Float16(3.0f)).to_float(), 3.0f);
  EXPECT_EQ((-Float16(5.0f)).to_float(), -5.0f);
}

TEST(Float16, ArithmeticRounds) {
  // 2048 + 1 rounds to 2048 in binary16 (ulp at 2048 is 2).
  EXPECT_EQ((Float16(2048.0f) + Float16(1.0f)).to_float(), 2048.0f);
  // 2048 + 3 = 2051 is halfway between 2050 and 2052; ties-to-even picks
  // 2052 (even mantissa).
  EXPECT_EQ((Float16(2048.0f) + Float16(3.0f)).to_float(), 2052.0f);
  EXPECT_EQ((Float16(2048.0f) + Float16(4.0f)).to_float(), 2052.0f);
}

TEST(Float16, MaxMinSemantics) {
  EXPECT_EQ(fmax16(Float16(1.0f), Float16(2.0f)).to_float(), 2.0f);
  EXPECT_EQ(fmin16(Float16(1.0f), Float16(2.0f)).to_float(), 1.0f);
  EXPECT_EQ(fmax16(Float16::lowest(), Float16(-3.0f)).to_float(), -3.0f);
  // NaN loses against numbers.
  const Float16 nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(fmax16(nan, Float16(5.0f)).to_float(), 5.0f);
  EXPECT_EQ(fmax16(Float16(5.0f), nan).to_float(), 5.0f);
}

TEST(Float16, ComparisonOperators) {
  EXPECT_LT(Float16(1.0f), Float16(2.0f));
  EXPECT_GT(Float16(2.0f), Float16(1.0f));
  EXPECT_LE(Float16(2.0f), Float16(2.0f));
  EXPECT_GE(Float16(2.0f), Float16(2.0f));
  EXPECT_NE(Float16(1.0f), Float16(2.0f));
}

TEST(Float16, LowestIsMinusMaxFinite) {
  EXPECT_EQ(Float16::lowest().to_float(), -65504.0f);
  EXPECT_EQ(Float16::max_finite().to_float(), 65504.0f);
}

TEST(Float16, RandomConversionMatchesLongDouble) {
  // Conversion through the implementation must agree with a
  // straightforward nearest-value search on random inputs.
  Xoshiro256 rng(42);
  for (int i = 0; i < 20000; ++i) {
    const float x = rng.next_float(-70000.0f, 70000.0f);
    const Float16 h(x);
    if (h.is_inf()) {
      EXPECT_GE(std::abs(x), 65520.0f);
      continue;
    }
    // |x - h| must be at most half an ulp of h's binade.
    const float back = h.to_float();
    const float err = std::abs(back - x);
    int exp;
    std::frexp(back == 0.0f ? x : back, &exp);
    const float ulp =
        std::ldexp(1.0f, std::max(exp - 11, -24));  // half ulp bound
    EXPECT_LE(err, ulp) << "x=" << x << " back=" << back;
  }
}

}  // namespace
}  // namespace davinci
