// Shared helpers for the test suite.
#pragma once

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "tensor/fractal.h"
#include "tensor/tensor.h"

namespace davinci::testutil {

// Bit-exact fp16 tensor comparison (+0 == -0; NaN != NaN -> failure).
inline void expect_equal_f16(const TensorF16& got, const TensorF16& want,
                             const char* what = "") {
  ASSERT_EQ(got.shape(), want.shape())
      << what << ": shape " << got.shape().to_string() << " vs "
      << want.shape().to_string();
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got.flat(i) == want.flat(i))
        << what << ": element " << i << ": " << got.flat(i).to_float()
        << " vs " << want.flat(i).to_float();
  }
}

// Tolerance-based fp16 comparison for cases where summation order differs.
inline void expect_close_f16(const TensorF16& got, const TensorF16& want,
                             float atol, const char* what = "") {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.flat(i).to_float(), want.flat(i).to_float(), atol)
        << what << ": element " << i;
  }
}

inline void expect_close_f32(const TensorF32& got, const TensorF32& want,
                             float atol, const char* what = "") {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.flat(i), want.flat(i), atol) << what << ": element " << i;
  }
}

// Random NC1HWC0 tensor with small-integer values (fp16-exact arithmetic).
inline TensorF16 random_int_nc1hwc0(std::int64_t n, std::int64_t c1,
                                    std::int64_t h, std::int64_t w,
                                    std::uint64_t seed, int lo = -8,
                                    int hi = 8) {
  TensorF16 t(Shape{n, c1, h, w, kC0});
  t.fill_random_ints(seed, lo, hi);
  return t;
}

inline TensorF16 random_float_nc1hwc0(std::int64_t n, std::int64_t c1,
                                      std::int64_t h, std::int64_t w,
                                      std::uint64_t seed) {
  TensorF16 t(Shape{n, c1, h, w, kC0});
  t.fill_random(seed);
  return t;
}

}  // namespace davinci::testutil
