// Unit tests for the scratch-pad buffer model and bounds-checked spans.
#include "sim/scratch.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace davinci {
namespace {

TEST(ScratchBuffer, AllocateAndUse) {
  ScratchBuffer ub(BufferKind::kUnified, 1024);
  auto a = ub.alloc<Float16>(100);
  EXPECT_EQ(a.size(), 100);
  EXPECT_EQ(a.kind(), BufferKind::kUnified);
  a.at(0) = Float16(1.0f);
  a.at(99) = Float16(2.0f);
  EXPECT_EQ(a.at(0).to_float(), 1.0f);
  EXPECT_EQ(a.at(99).to_float(), 2.0f);
}

TEST(ScratchBuffer, CapacityEnforced) {
  ScratchBuffer ub(BufferKind::kUnified, 256);
  auto a = ub.alloc<Float16>(64);  // 128 bytes
  (void)a;
  EXPECT_THROW(ub.alloc<Float16>(128), Error);  // would need 256 more
  auto b = ub.alloc<Float16>(64);  // exactly fills the rest
  (void)b;
  EXPECT_THROW(ub.alloc<Float16>(1), Error);
}

TEST(ScratchBuffer, AllocationOffsetsAre32ByteAligned) {
  // Alignment is within the buffer's own address space (the hardware's
  // 32-byte block granularity), not a host-pointer property.
  ScratchBuffer ub(BufferKind::kUnified, 1024);
  auto a = ub.alloc<Float16>(3);  // 6 bytes -> offset 0
  auto b = ub.alloc<Float16>(1);  // starts at the next 32-byte block
  const auto addr_a = reinterpret_cast<std::uintptr_t>(a.data());
  const auto addr_b = reinterpret_cast<std::uintptr_t>(b.data());
  EXPECT_EQ(addr_b - addr_a, 32u);
  EXPECT_EQ(ub.bytes_used(), 34);  // 32 + 2
  auto c = ub.alloc<Float16>(1);
  const auto addr_c = reinterpret_cast<std::uintptr_t>(c.data());
  EXPECT_EQ(addr_c - addr_b, 32u);
}

TEST(ScratchBuffer, ResetReclaimsSpace) {
  ScratchBuffer ub(BufferKind::kUnified, 256);
  ub.alloc<Float16>(128);
  EXPECT_EQ(ub.bytes_free(), 0);
  ub.reset();
  EXPECT_EQ(ub.bytes_used(), 0);
  auto a = ub.alloc<Float16>(128);
  EXPECT_EQ(a.size(), 128);
}

TEST(ScratchBuffer, HighWaterTracking) {
  ScratchBuffer ub(BufferKind::kUnified, 1024);
  ub.alloc<Float16>(100);
  ub.reset();
  ub.alloc<Float16>(10);
  EXPECT_EQ(ub.high_water_bytes(), 200);
  ub.reset_high_water();
  EXPECT_EQ(ub.high_water_bytes(), 0);
}

TEST(Span, BoundsChecked) {
  ScratchBuffer ub(BufferKind::kUnified, 1024);
  auto a = ub.alloc<Float16>(10);
  EXPECT_THROW(a.at(10), Error);
  EXPECT_THROW(a.at(-1), Error);
}

TEST(Span, SubspanChecked) {
  ScratchBuffer ub(BufferKind::kUnified, 1024);
  auto a = ub.alloc<Float16>(10);
  auto s = a.sub(4, 4);
  EXPECT_EQ(s.size(), 4);
  s.at(0) = Float16(7.0f);
  EXPECT_EQ(a.at(4).to_float(), 7.0f);
  EXPECT_THROW(a.sub(8, 4), Error);
  EXPECT_THROW(a.sub(-1, 2), Error);
  auto d = a.drop_front(6);
  EXPECT_EQ(d.size(), 4);
}

TEST(Span, KindPropagates) {
  ScratchBuffer l1(BufferKind::kL1, 1024);
  auto a = l1.alloc<Float16>(8);
  EXPECT_EQ(a.sub(0, 4).kind(), BufferKind::kL1);
}

TEST(Span, GmSpanWrapsHostMemory) {
  Float16 data[4];
  auto s = gm_span(data, 4);
  EXPECT_EQ(s.kind(), BufferKind::kGlobal);
  s.at(3) = Float16(9.0f);
  EXPECT_EQ(data[3].to_float(), 9.0f);
}

TEST(ScratchBuffer, BufferKindNames) {
  EXPECT_STREQ(to_string(BufferKind::kUnified), "UB");
  EXPECT_STREQ(to_string(BufferKind::kL1), "L1");
  EXPECT_STREQ(to_string(BufferKind::kL0A), "L0A");
  EXPECT_STREQ(to_string(BufferKind::kGlobal), "GM");
}

}  // namespace
}  // namespace davinci
