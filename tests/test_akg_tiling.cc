// Tests for the AKG-like tile planner: UB footprints, plan feasibility,
// tile geometry, and the Figure 8 tiling threshold.
#include "akg/tiling.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace davinci::akg {
namespace {

const ArchConfig kArch = ArchConfig::ascend910();

TEST(Tiling, FootprintOrdering) {
  // For overlapping windows: direct < im2col (duplication) < expansion
  // (input + duplication + output).
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t d = ub_bytes_fwd(PoolImpl::kDirect, w, 8, 33, false);
  const std::int64_t i = ub_bytes_fwd(PoolImpl::kIm2col, w, 8, 33, false);
  const std::int64_t e = ub_bytes_fwd(PoolImpl::kExpansion, w, 8, 33, false);
  EXPECT_LT(d, i);
  EXPECT_LT(i, e);
}

TEST(Tiling, FootprintMonotoneInTileRows) {
  const Window2d w = Window2d::pool(3, 2);
  for (auto impl : {PoolImpl::kDirect, PoolImpl::kIm2col,
                    PoolImpl::kExpansion, PoolImpl::kXYSplit}) {
    std::int64_t prev = 0;
    for (std::int64_t oh = 1; oh <= 16; ++oh) {
      const std::int64_t b = ub_bytes_fwd(impl, w, oh, 65, false);
      EXPECT_GE(b, prev) << to_string(impl) << " oh=" << oh;
      prev = b;
    }
  }
}

TEST(Tiling, MaskAddsFootprint) {
  const Window2d w = Window2d::pool(3, 2);
  EXPECT_GT(ub_bytes_fwd(PoolImpl::kIm2col, w, 8, 33, true),
            ub_bytes_fwd(PoolImpl::kIm2col, w, 8, 33, false));
}

TEST(Tiling, PlanFitsUnifiedBuffer) {
  const Window2d w = Window2d::pool(3, 2);
  for (auto impl : {PoolImpl::kDirect, PoolImpl::kIm2col,
                    PoolImpl::kExpansion, PoolImpl::kXYSplit}) {
    const PoolPlan p = plan_fwd(impl, kArch, w, 147, 147, false);
    EXPECT_GE(p.oh_tile, 1);
    EXPECT_LE(ub_bytes_fwd(impl, w, p.oh_tile, 147, false), kArch.ub_bytes);
    // Maximality: one more row must not fit (unless already untiled).
    if (p.num_h_tiles > 1) {
      EXPECT_GT(ub_bytes_fwd(impl, w, p.oh_tile + 1, 147, false),
                kArch.ub_bytes)
          << to_string(impl);
    }
  }
}

TEST(Tiling, SmallInputsNeedNoTiling) {
  const Window2d w = Window2d::pool(3, 2);
  const PoolPlan p = plan_fwd(PoolImpl::kIm2col, kArch, w, 35, 35, false);
  EXPECT_EQ(p.num_h_tiles, 1);
  EXPECT_EQ(p.oh_tile, 17);
}

TEST(Tiling, InceptionLargestInputIsTiled) {
  const Window2d w = Window2d::pool(3, 2);
  // (147, 147): a full slice needs ~691 KiB for the input alone.
  const PoolPlan pd = plan_fwd(PoolImpl::kDirect, kArch, w, 147, 147, false);
  EXPECT_GT(pd.num_h_tiles, 1);
  const PoolPlan pi = plan_fwd(PoolImpl::kIm2col, kArch, w, 147, 147, false);
  EXPECT_GT(pi.num_h_tiles, 1);
  // The im2col footprint is larger, so its tiles are no taller.
  EXPECT_LE(pi.oh_tile, pd.oh_tile);
}

TEST(Tiling, HTileCoversOutputExactly) {
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t ih = 147, oh = w.out_h(ih);
  const PoolPlan p = plan_fwd(PoolImpl::kIm2col, kArch, w, ih, 147, false);
  std::int64_t covered = 0;
  for (std::int64_t t = 0; t < p.num_h_tiles; ++t) {
    const HTile ht = h_tile(w, ih, oh, p.oh_tile, t);
    EXPECT_EQ(ht.o0, covered);
    EXPECT_GT(ht.out_rows(), 0);
    // Input rows must match the window equation for the tile.
    EXPECT_EQ(ht.in_rows() + ht.pt_eff + ht.pb_eff,
              (ht.out_rows() - 1) * w.sh + w.kh);
    covered = ht.o1;
  }
  EXPECT_EQ(covered, oh);
}

TEST(Tiling, HTilesOverlapByKhMinusSh) {
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t ih = 99, oh = w.out_h(ih);
  const HTile t0 = h_tile(w, ih, oh, 10, 0);
  const HTile t1 = h_tile(w, ih, oh, 10, 1);
  EXPECT_EQ(t0.y1 - t1.y0, w.kh - w.sh);
}

TEST(Tiling, PaddedTilesGetVirtualPadding) {
  Window2d w = Window2d::pool(3, 2);
  w.pt = 1;
  w.pb = 1;
  // (41 + 2 - 3) / 2 + 1 = 21; the last patch covers virtual rows 40..42,
  // i.e. real rows 39..40 plus one bottom-padding row.
  const std::int64_t ih = 41, oh = w.out_h(ih);
  ASSERT_EQ(oh, 21);
  const HTile first = h_tile(w, ih, oh, 5, 0);
  EXPECT_EQ(first.pt_eff, 1);
  EXPECT_EQ(first.y0, 0);
  const HTile last = h_tile(w, ih, oh, 5, 4);
  EXPECT_EQ(last.pb_eff, 1);
  EXPECT_EQ(last.y1, ih);
  const HTile mid = h_tile(w, ih, oh, 5, 1);
  EXPECT_EQ(mid.pt_eff, 0);
  EXPECT_EQ(mid.pb_eff, 0);
}

TEST(Tiling, BackwardPlanFits) {
  const Window2d w = Window2d::pool(3, 2);
  const PoolPlan p = plan_bwd(kArch, w, 147, 147);
  EXPECT_GE(p.oh_tile, 1);
  EXPECT_LE(ub_bytes_bwd(p.oh_tile, 147, w), kArch.ub_bytes);
}

TEST(Tiling, ThresholdPropertiesStride2) {
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t h = tiling_threshold(kArch, w);
  EXPECT_GT(h, w.kh);
  // At the threshold every implementation fits untiled...
  for (auto impl : {PoolImpl::kDirect, PoolImpl::kIm2col,
                    PoolImpl::kExpansion}) {
    EXPECT_LE(ub_bytes_fwd(impl, w, w.out_h(h), h, false), kArch.ub_bytes)
        << to_string(impl);
  }
  // ...and two rows further at least one does not.
  const std::int64_t h2 = h + 2;
  const bool all_fit =
      ub_bytes_fwd(PoolImpl::kDirect, w, w.out_h(h2), h2, false) <=
          kArch.ub_bytes &&
      ub_bytes_fwd(PoolImpl::kIm2col, w, w.out_h(h2), h2, false) <=
          kArch.ub_bytes &&
      ub_bytes_fwd(PoolImpl::kExpansion, w, w.out_h(h2), h2, false) <=
          kArch.ub_bytes &&
      h2 * h2 * kC0 * 2 <= kArch.l1_bytes;
  EXPECT_FALSE(all_fit);
}

TEST(Tiling, ThresholdShrinksWithOverlap) {
  // Stride (1,1) duplicates 9x the data in the im2col form, so the
  // threshold is much smaller than at stride (3,3) where there is no
  // duplication.
  const std::int64_t t1 = tiling_threshold(kArch, Window2d::pool(3, 1));
  const std::int64_t t2 = tiling_threshold(kArch, Window2d::pool(3, 2));
  const std::int64_t t3 = tiling_threshold(kArch, Window2d::pool(3, 3));
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(Tiling, XYSplitConstraintTightensThreshold) {
  const Window2d w = Window2d::pool(3, 2);
  EXPECT_LE(tiling_threshold(kArch, w, false, true),
            tiling_threshold(kArch, w, false, false));
}

TEST(Tiling, ImplNames) {
  EXPECT_STREQ(to_string(PoolImpl::kDirect), "direct");
  EXPECT_STREQ(to_string(PoolImpl::kIm2col), "im2col");
  EXPECT_STREQ(to_string(PoolImpl::kExpansion), "expansion");
  EXPECT_STREQ(to_string(PoolImpl::kXYSplit), "xysplit");
}

}  // namespace
}  // namespace davinci::akg
