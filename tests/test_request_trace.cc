// Tests for request lifecycle tracing (serve/request_trace.h): the
// bounded event ring, the end-to-end event sequences a serving session
// records, and the unified host+device Chrome trace.
#include "serve/request_trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <iterator>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"
#include "kernels/pooling.h"
#include "serve/session.h"
#include "sim/trace_export.h"
#include "tensor/tensor.h"

using namespace davinci;
using namespace davinci::serve;
using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolOpKind;

namespace {

TensorF16 make_input(std::int64_t n, std::int64_t h, std::int64_t w,
                     std::uint64_t seed) {
  TensorF16 t(Shape{n, 2, h, w, kC0});
  t.fill_random_ints(seed);
  return t;
}

PoolOp max3x2() {
  return PoolOp{.kind = PoolOpKind::kMaxFwd,
                .window = Window2d::pool(3, 2),
                .fwd = akg::PoolImpl::kIm2col};
}

std::vector<ReqEvent> events_for(const std::vector<ReqEvent>& all,
                                 std::int64_t id) {
  std::vector<ReqEvent> out;
  for (const ReqEvent& e : all) {
    if (e.request == id) out.push_back(e);
  }
  return out;
}

bool has_kind(const std::vector<ReqEvent>& evs, ReqEventKind k) {
  return std::any_of(evs.begin(), evs.end(),
                     [k](const ReqEvent& e) { return e.kind == k; });
}

}  // namespace

// --- The ring itself -----------------------------------------------------

TEST(RequestTraceRing, BoundedOverwriteWithDropCounter) {
  RequestTraceRing ring(4);
  ASSERT_TRUE(ring.enabled());
  for (std::int64_t i = 0; i < 10; ++i) {
    ring.record(i, ReqEventKind::kSubmitted, i);
  }
  const RequestTraceRing::Stats s = ring.stats();
  EXPECT_EQ(s.capacity, 4u);
  EXPECT_EQ(s.recorded, 10);
  EXPECT_EQ(s.dropped, 6);
  // Cumulative per-kind counters stay exact despite the overwrites.
  EXPECT_EQ(s.by_kind[static_cast<int>(ReqEventKind::kSubmitted)], 10);

  // The snapshot holds the newest 4 events, oldest first.
  const std::vector<ReqEvent> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].request, static_cast<std::int64_t>(6 + i));
  }
  // Timestamps are monotone within the snapshot.
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i].t_us, snap[i - 1].t_us);
  }
}

TEST(RequestTraceRing, ZeroCapacityDisablesRecording) {
  RequestTraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.record(1, ReqEventKind::kSubmitted);
  EXPECT_EQ(ring.stats().recorded, 0);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(RequestTraceRing, ResetForgetsEventsAndRestartsEpoch) {
  RequestTraceRing ring(8);
  ring.record(1, ReqEventKind::kSubmitted);
  ring.record(1, ReqEventKind::kCompleted);
  ring.reset();
  EXPECT_EQ(ring.stats().recorded, 0);
  EXPECT_EQ(ring.stats().dropped, 0);
  EXPECT_TRUE(ring.snapshot().empty());
  ring.record(2, ReqEventKind::kSubmitted);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  // Post-reset timestamps restart near the new epoch.
  EXPECT_LT(snap[0].t_us, 1e6);
}

TEST(RequestTraceRing, JsonSummaryListsNonZeroKinds) {
  RequestTraceRing ring(8);
  ring.record(0, ReqEventKind::kSubmitted);
  ring.record(0, ReqEventKind::kShed);
  const std::string j = request_trace_json(ring.stats());
  const json::Value v = json::parse(j);
  EXPECT_EQ(v.at("capacity").as_int(), 8);
  EXPECT_EQ(v.at("recorded").as_int(), 2);
  EXPECT_EQ(v.at("by_kind").at("submitted").as_int(), 1);
  EXPECT_EQ(v.at("by_kind").at("shed").as_int(), 1);
  // Zero kinds are omitted from the object.
  EXPECT_EQ(v.at("by_kind").get("completed"), nullptr);
}

// --- End-to-end lifecycle through a session ------------------------------

TEST(RequestTraceSession, CompletedRequestRecordsTheFullLifecycle) {
  Session session(Cluster{});
  const TensorF16 in = make_input(1, 15, 15, 3);
  SubmitOptions sub;
  std::int64_t id = -1;
  sub.trace_id = &id;
  sub.prio = 2;
  auto f = session.submit(max3x2(), PoolInputs{.in = &in}, sub);
  EXPECT_EQ(id, 0);  // ids start at 0 and are handed out before return
  f.get();
  session.drain();

  const auto evs = events_for(session.request_events(), id);
  // submitted -> admitted -> planned -> batched -> launched -> completed,
  // in that order.
  const ReqEventKind want[] = {
      ReqEventKind::kSubmitted, ReqEventKind::kAdmitted,
      ReqEventKind::kPlanned,   ReqEventKind::kBatched,
      ReqEventKind::kLaunched,  ReqEventKind::kCompleted};
  std::size_t at = 0;
  for (const ReqEvent& e : evs) {
    if (at < std::size(want) && e.kind == want[at]) at += 1;
  }
  EXPECT_EQ(at, std::size(want)) << "missing lifecycle transition";
  // With the VM on (the default), the launch also lands on the stream.
  EXPECT_TRUE(has_kind(evs, ReqEventKind::kVmScheduled));
  // Payloads: kSubmitted carries the prio; the first launch is batch 0.
  for (const ReqEvent& e : evs) {
    if (e.kind == ReqEventKind::kSubmitted) EXPECT_EQ(e.a, 2);
    if (e.kind == ReqEventKind::kBatched) {
      EXPECT_EQ(e.a, 0);
      EXPECT_EQ(e.b, 1);
    }
    if (e.kind == ReqEventKind::kVmScheduled) EXPECT_GT(e.b, e.a);
  }
  // Stats surface mirrors the ring.
  const SessionStats s = session.stats();
  EXPECT_GE(s.request_trace.recorded, 6);
  EXPECT_EQ(s.request_trace.dropped, 0);
}

TEST(RequestTraceSession, TraceIdsAreMonotonicAcrossSubmitAndTrySubmit) {
  Session session(Cluster{});
  const TensorF16 in = make_input(1, 15, 15, 4);
  std::vector<std::future<kernels::PoolResult>> fs;
  std::int64_t prev = -1;
  for (int i = 0; i < 3; ++i) {
    SubmitOptions sub;
    std::int64_t id = -1;
    sub.trace_id = &id;
    fs.push_back(session.submit(max3x2(), PoolInputs{.in = &in}, sub));
    EXPECT_EQ(id, prev + 1);
    prev = id;
  }
  std::future<kernels::PoolResult> f;
  SubmitOptions sub;
  std::int64_t id = -1;
  sub.trace_id = &id;
  ASSERT_TRUE(session.try_submit(max3x2(), PoolInputs{.in = &in}, &f, sub));
  EXPECT_EQ(id, prev + 1);
  fs.push_back(std::move(f));
  session.drain();
  for (auto& fut : fs) fut.get();
}

TEST(RequestTraceSession, ExpiredRequestRecordsExpiry) {
  Session session(Cluster{});
  const TensorF16 in = make_input(1, 15, 15, 5);
  session.pause();
  SubmitOptions sub;
  std::int64_t id = -1;
  sub.trace_id = &id;
  sub.deadline_us = 1;  // lapses while the queue is paused
  auto f = session.submit(max3x2(), PoolInputs{.in = &in}, sub);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  session.resume();
  session.drain();
  EXPECT_THROW(f.get(), DeadlineExceeded);

  const auto evs = events_for(session.request_events(), id);
  EXPECT_TRUE(has_kind(evs, ReqEventKind::kSubmitted));
  EXPECT_TRUE(has_kind(evs, ReqEventKind::kExpired));
  EXPECT_FALSE(has_kind(evs, ReqEventKind::kLaunched));
  EXPECT_FALSE(has_kind(evs, ReqEventKind::kCompleted));
}

TEST(RequestTraceSession, ShedVictimRecordsShed) {
  SessionOptions opts;
  opts.queue_depth = 1;
  opts.overload = OverloadPolicy::kShedOldest;
  Session session(Cluster{}, opts);
  const TensorF16 in = make_input(1, 15, 15, 6);
  session.pause();
  std::int64_t first = -1, second = -1;
  SubmitOptions sub1;
  sub1.trace_id = &first;
  auto f1 = session.submit(max3x2(), PoolInputs{.in = &in}, sub1);
  SubmitOptions sub2;
  sub2.trace_id = &second;
  auto f2 = session.submit(max3x2(), PoolInputs{.in = &in}, sub2);
  session.resume();
  session.drain();
  EXPECT_THROW(f1.get(), Overloaded);
  f2.get();

  const auto all = session.request_events();
  EXPECT_TRUE(has_kind(events_for(all, first), ReqEventKind::kShed));
  EXPECT_TRUE(has_kind(events_for(all, second), ReqEventKind::kCompleted));
}

TEST(RequestTraceSession, RejectedRequestRecordsRejection) {
  SessionOptions opts;
  opts.queue_depth = 1;
  opts.overload = OverloadPolicy::kRejectNew;
  Session session(Cluster{}, opts);
  const TensorF16 in = make_input(1, 15, 15, 7);
  session.pause();
  std::int64_t first = -1, second = -1;
  SubmitOptions sub1;
  sub1.trace_id = &first;
  auto f1 = session.submit(max3x2(), PoolInputs{.in = &in}, sub1);
  SubmitOptions sub2;
  sub2.trace_id = &second;
  auto f2 = session.submit(max3x2(), PoolInputs{.in = &in}, sub2);
  session.resume();
  session.drain();
  f1.get();
  EXPECT_THROW(f2.get(), Overloaded);
  EXPECT_TRUE(has_kind(events_for(session.request_events(), second),
                       ReqEventKind::kRejected));
}

TEST(RequestTraceSession, ResetStatsClearsTheRing) {
  Session session(Cluster{});
  const TensorF16 in = make_input(1, 15, 15, 8);
  session.submit(max3x2(), PoolInputs{.in = &in}).get();
  session.drain();
  ASSERT_GT(session.stats().request_trace.recorded, 0);
  session.reset_stats();
  EXPECT_EQ(session.stats().request_trace.recorded, 0);
  EXPECT_TRUE(session.request_events().empty());
  // Ids keep counting -- they are identities, not statistics.
  std::int64_t id = -1;
  SubmitOptions sub;
  sub.trace_id = &id;
  session.submit(max3x2(), PoolInputs{.in = &in}, sub).get();
  session.drain();
  EXPECT_GT(id, 0);
  // Post-reset batch ids restart at 0 (re-aligned with the VM stream).
  for (const ReqEvent& e : session.request_events()) {
    if (e.kind == ReqEventKind::kBatched) EXPECT_EQ(e.a, 0);
  }
}

// --- Span building and the unified Chrome trace --------------------------

TEST(RequestSpans, ExecuteSpanSitsExactlyOnTheVmPlacement) {
  std::vector<ReqEvent> evs;
  auto push = [&](std::int64_t req, ReqEventKind k, double t, std::int64_t a,
                  std::int64_t b) {
    evs.push_back(ReqEvent{req, k, t, a, b});
  };
  // Request 0: queued 0..10us, launched at 12us, VM span [100, 250).
  push(0, ReqEventKind::kSubmitted, 0.0, 0, 0);
  push(0, ReqEventKind::kAdmitted, 10.0, 10, 0);
  push(0, ReqEventKind::kPlanned, 11.0, 1, 0);
  push(0, ReqEventKind::kBatched, 12.0, 0, 1);
  push(0, ReqEventKind::kLaunched, 12.0, 0, 1);
  push(0, ReqEventKind::kVmScheduled, 13.0, 100, 250);
  push(0, ReqEventKind::kCompleted, 40.0, 40, 0);

  const std::vector<HostSpan> spans = build_request_spans(evs);
  ASSERT_EQ(spans.size(), 3u);  // queued, batching, execute
  const HostSpan* exec = nullptr;
  const HostSpan* batching = nullptr;
  for (const HostSpan& s : spans) {
    if (s.name == "execute") exec = &s;
    if (s.name == "batching") batching = &s;
  }
  ASSERT_NE(exec, nullptr);
  ASSERT_NE(batching, nullptr);
  EXPECT_EQ(exec->start, 100);
  EXPECT_EQ(exec->end, 250);
  // Batching tiles exactly against the device span.
  EXPECT_EQ(batching->end, exec->start);
  EXPECT_NE(batching->args_json.find("\"plan_cache_hit\":true"),
            std::string::npos);
}

TEST(RequestSpans, FailureOutcomesRenderAsInstantEvents) {
  std::vector<ReqEvent> evs;
  evs.push_back(ReqEvent{3, ReqEventKind::kSubmitted, 0.0, 0, 0});
  evs.push_back(ReqEvent{3, ReqEventKind::kExpired, 25.0, 25, 0});
  const std::vector<HostSpan> spans = build_request_spans(evs);
  ASSERT_EQ(spans.size(), 2u);  // queued + terminal instant
  EXPECT_EQ(spans[0].name, "queued");
  EXPECT_TRUE(spans[1].instant);
  EXPECT_EQ(spans[1].name, "expired");
}

TEST(UnifiedTrace, ContainsHostSpansAndVmTracksInOneValidDocument) {
  SessionOptions opts;
  opts.vm_capture = true;
  Session session(Cluster{}, opts);
  const TensorF16 in = make_input(1, 15, 15, 9);
  std::vector<std::future<kernels::PoolResult>> fs;
  for (int i = 0; i < 3; ++i) {
    fs.push_back(session.submit(max3x2(), PoolInputs{.in = &in}));
  }
  session.drain();
  for (auto& f : fs) f.get();

  const std::string trace = session.unified_chrome_trace();
  const json::Value doc = json::parse(trace);
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  bool saw_serve_span = false, saw_vm_span = false, saw_host_process = false;
  std::int64_t last_counter_tiles = -1;
  std::int64_t last_counter_ts = -1;
  for (const json::Value& e : events) {
    const std::string ph = e.at("ph").as_string();
    const json::Value* cat = e.get("cat");
    if (ph == "X" && cat != nullptr && cat->as_string() == "serve") {
      saw_serve_span = true;
    }
    if (ph == "X" && cat != nullptr && cat->as_string() == "vm") {
      saw_vm_span = true;
    }
    if (ph == "M" && e.at("name").as_string() == "process_name" &&
        e.at("args").at("name").as_string() == "serve requests") {
      saw_host_process = true;
    }
    if (ph == "C" &&
        e.at("name").as_string() == "ub tiles in flight") {
      last_counter_tiles = e.at("args").at("tiles").as_int();
      last_counter_ts = e.at("ts").as_int();
    }
  }
  EXPECT_TRUE(saw_serve_span);
  EXPECT_TRUE(saw_vm_span);
  EXPECT_TRUE(saw_host_process);
  // The CI invariant: the final counter sample closes at zero, at the
  // stream makespan.
  EXPECT_EQ(last_counter_tiles, 0);
  EXPECT_EQ(last_counter_ts, session.stats().vm.makespan);
}

TEST(UnifiedTrace, HostOnlyTraceIsValidWithVmCaptureOff) {
  Session session(Cluster{});  // vm_capture off: no placements
  const TensorF16 in = make_input(1, 15, 15, 10);
  session.submit(max3x2(), PoolInputs{.in = &in}).get();
  session.drain();
  const std::string trace = session.unified_chrome_trace();
  const json::Value doc = json::parse(trace);
  bool saw_serve_span = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    const json::Value* cat = e.get("cat");
    if (e.at("ph").as_string() == "X" && cat != nullptr &&
        cat->as_string() == "serve") {
      saw_serve_span = true;
    }
  }
  EXPECT_TRUE(saw_serve_span);
}

TEST(RequestTraceSession, HistogramPercentilesCrossCheckAgainstExact) {
  // The in-session version of the CI gate: with every sample retained
  // (count <= latency_sample_cap), histogram p50/p99 must land within 5%
  // of the exact-sample percentiles.
  Session session(Cluster{});
  const TensorF16 in = make_input(1, 15, 15, 11);
  std::vector<std::future<kernels::PoolResult>> fs;
  for (int i = 0; i < 24; ++i) {
    fs.push_back(session.submit(max3x2(), PoolInputs{.in = &in}));
  }
  session.drain();
  for (auto& f : fs) f.get();
  const SessionStats s = session.stats();
  ASSERT_EQ(s.latency_exact.count, s.latency.count);
  for (auto [hist, exact] :
       {std::pair{s.latency.p50, s.latency_exact.p50},
        std::pair{s.latency.p99, s.latency_exact.p99}}) {
    if (exact > 1.0) {
      EXPECT_LE(std::abs(hist - exact) / exact, 0.05)
          << "hist=" << hist << " exact=" << exact;
    }
  }
}
