// Tests for the TVM-style compute DSL: the paper's Listings 1-3 written
// literally and validated against the reference implementations and the
// simulator kernels.
#include "akg/dsl.h"

#include <gtest/gtest.h>

#include "common/align.h"
#include "kernels/pooling.h"
#include "ref/im2col_ref.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci::akg::dsl {
namespace {

// Listing 1: the standard MaxPool compute definition.
//   output = compute((N, C1, Oh, Ow, C0),
//       lambda n, c1, h, w, c0:
//           max(input[n, c1, h*Sh + red_h, w*Sw + red_w, c0],
//               axis=[red_h, red_w]))
Compute listing1(const Shape& in_shape, const Window2d& w) {
  const auto input = placeholder(in_shape, "input", 0);
  const auto rh = reduce_axis(w.kh, "red_h");
  const auto rw = reduce_axis(w.kw, "red_w");
  const Shape out{in_shape[0], in_shape[1], w.out_h(in_shape[2]),
                  w.out_w(in_shape[3]), kC0};
  return compute(out, [&](const std::vector<IndexExpr>& i) {
    return max(input(i[0], i[1], i[2] * w.sh + rh, i[3] * w.sw + rw, i[4]),
               {rh, rw});
  });
}

// Listing 2: MaxPool over the Im2Col-loaded shape
// (N, C1, Kh, Kw, Oh, Ow, C0) -- the reduction axes became outermost.
// (We use the fractal-padded patch dimension PP = Oh*Ow rounded to whole
// fractals, flattened, exactly as the load produces it.)
Compute listing2(const Shape& cols_shape, const Window2d& w,
                 std::int64_t oh, std::int64_t ow) {
  const auto cols = placeholder(cols_shape, "input-im2col", 0);
  const auto rh = reduce_axis(w.kh, "red_h");
  const auto rw = reduce_axis(w.kw, "red_w");
  const Shape out{cols_shape[0], cols_shape[1], oh, ow, kC0};
  return compute(out, [&](const std::vector<IndexExpr>& i) {
    return max(cols(i[0], i[1], rh, rw, i[2] * ow + i[3], i[4]), {rh, rw});
  });
}

TEST(Dsl, Listing1EqualsReferenceMaxpool) {
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 9, 11, 81);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 got = evaluate(listing1(in.shape(), w), {&in});
  const TensorF16 want = ref::maxpool_fwd(in, w);
  testutil::expect_equal_f16(got, want, "listing 1");
}

TEST(Dsl, Listing1EqualsSimulatorKernel) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 11, 11, 82);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 got = evaluate(listing1(in.shape(), w), {&in});
  auto kernel = kernels::maxpool_forward(dev, in, w, PoolImpl::kDirect);
  testutil::expect_equal_f16(got, kernel.out, "listing 1 vs kernel");
}

TEST(Dsl, Listing2OnIm2colInputEqualsListing1) {
  // The paper's schedule change: the same reduction over the transformed
  // layout produces identical results.
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 9, 9, 83);
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t oh = w.out_h(9), ow = w.out_w(9);
  const TensorF16 cols = ref::im2col(in, w);  // (N, C1, Kh, Kw, PP, C0)

  const TensorF16 a = evaluate(listing1(in.shape(), w), {&in});
  const TensorF16 b = evaluate(listing2(cols.shape(), w, oh, ow), {&cols});
  testutil::expect_equal_f16(a, b, "listing 2 == listing 1");
}

TEST(Dsl, Listing3MaskGradientMultiply) {
  // Listing 3: mask-gradient = argmax-mask[n,c1,kh,kw,oh,ow,c0]
  //                            * gradient[n,c1,oh,ow,c0].
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 84);
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t oh = w.out_h(9), ow = w.out_w(9);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 1, oh, ow, kC0});
  grad.fill_random_ints(85, 0, 5);

  // The geometry gives PP == Oh*Ow here (16 patches, no tail), so the
  // flattened patch axis indexes the gradient directly; view the gradient
  // as (N, C1, 1, Oh*Ow, C0).
  ASSERT_EQ(mask.shape()[4], oh * ow);
  TensorF16 gflat(Shape{1, 1, 1, oh * ow, kC0});
  for (std::int64_t i = 0; i < grad.size(); ++i) gflat.flat(i) = grad.flat(i);

  const auto m = placeholder(mask.shape(), "argmax-mask", 0);
  const auto g = placeholder(gflat.shape(), "gradients", 1);
  const Compute c = compute(
      mask.shape(), [&](const std::vector<IndexExpr>& i) {
        // i = (n, c1, kh, kw, p, c0), as in Listing 3's
        // argmax-mask(b, c1, kh, kw, oh, ow, c0) * gradient(b, c1, oh, ow, c0).
        return m(i[0], i[1], i[2], i[3], i[4], i[5]) *
               g(i[0], i[1], IndexExpr(0), i[4], i[5]);
      });
  const TensorF16 got = evaluate(c, {&mask, &gflat});

  // Compare against the straightforward host computation.
  for (std::int64_t k = 0; k < 9; ++k) {
    for (std::int64_t p = 0; p < oh * ow; ++p) {
      for (std::int64_t ch = 0; ch < kC0; ++ch) {
        const Float16 want =
            mask.flat((k * oh * ow + p) * kC0 + ch) * grad.flat(p * kC0 + ch);
        ASSERT_TRUE(got.flat((k * oh * ow + p) * kC0 + ch) == want);
      }
    }
  }
}

TEST(Dsl, AvgpoolAsSumThenScale) {
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 8, 8, 86);
  const Window2d w = Window2d::pool(2, 2);
  const auto input = placeholder(in.shape(), "input", 0);
  const auto rh = reduce_axis(2, "red_h");
  const auto rw = reduce_axis(2, "red_w");
  const Shape out{1, 1, 4, 4, kC0};
  // Two computes: the reduction, then the elementwise scale (reductions
  // must be top-level, as in TVM).
  const Compute summed = compute(out, [&](const std::vector<IndexExpr>& i) {
    return sum(input(i[0], i[1], i[2] * 2 + rh, i[3] * 2 + rw, i[4]),
               {rh, rw});
  });
  const TensorF16 s = evaluate(summed, {&in});
  const auto sp = placeholder(s.shape(), "summed", 0);
  const Compute scaled = compute(out, [&](const std::vector<IndexExpr>& i) {
    return sp(i[0], i[1], i[2], i[3], i[4]) * constant(0.25f);
  });
  const TensorF16 got = evaluate(scaled, {&s});
  const TensorF16 want = ref::avgpool_fwd(in, w);
  testutil::expect_equal_f16(got, want, "avgpool via DSL");
}

TEST(Dsl, MinReduction) {
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 6, 6, 87);
  const Window2d w = Window2d::pool(2, 2);
  const auto input = placeholder(in.shape(), "input", 0);
  const auto rh = reduce_axis(2, "rh");
  const auto rw = reduce_axis(2, "rw");
  const Compute c = compute(Shape{1, 1, 3, 3, kC0},
                            [&](const std::vector<IndexExpr>& i) {
                              return min(input(i[0], i[1], i[2] * 2 + rh,
                                               i[3] * 2 + rw, i[4]),
                                         {rh, rw});
                            });
  const TensorF16 got = evaluate(c, {&in});
  testutil::expect_equal_f16(got, ref::minpool_fwd(in, w), "min reduce");
}

TEST(Dsl, ElementwiseArithmetic) {
  TensorF16 a(Shape{4, 4});
  TensorF16 b(Shape{4, 4});
  a.fill_random_ints(88, 1, 5);
  b.fill_random_ints(89, 1, 5);
  const auto pa = placeholder(a.shape(), "a", 0);
  const auto pb = placeholder(b.shape(), "b", 1);
  const Compute c = compute(Shape{4, 4}, [&](const std::vector<IndexExpr>& i) {
    return (pa(i[0], i[1]) + pb(i[0], i[1])) * constant(2.0f) -
           pa(i[0], i[1]) / pb(i[0], i[1]);
  });
  const TensorF16 got = evaluate(c, {&a, &b});
  for (std::int64_t i = 0; i < got.size(); ++i) {
    const Float16 want =
        (a.flat(i) + b.flat(i)) * Float16(2.0f) - a.flat(i) / b.flat(i);
    ASSERT_TRUE(got.flat(i) == want) << i;
  }
}

TEST(Dsl, ReductionOrderMattersForFp16Sums) {
  // The declaration order of reduce axes defines the accumulation order;
  // fp16 sums are order-sensitive, and the interpreter must honour it.
  TensorF16 in(Shape{1, 4});
  in.flat(0) = Float16(2048.0f);
  in.flat(1) = Float16(1.0f);
  in.flat(2) = Float16(1.0f);
  in.flat(3) = Float16(0.0f);
  const auto p = placeholder(in.shape(), "x", 0);
  const auto r = reduce_axis(4, "r");
  const Compute c = compute(Shape{1}, [&](const std::vector<IndexExpr>& i) {
    return sum(p(i[0], r), {r});
  });
  const TensorF16 got = evaluate(c, {&in});
  // ((2048 + 1) + 1) + 0: each +1 is absorbed (ulp = 2 at 2048).
  EXPECT_EQ(got.flat(0).to_float(), 2048.0f);
}

TEST(Dsl, ErrorsAreActionable) {
  const auto p = placeholder(Shape{4, 4}, "x", 0);
  // Rank mismatch on load.
  EXPECT_THROW(p.load({IndexExpr(0)}), Error);
  // Out-of-bounds index at evaluation.
  TensorF16 in(Shape{4, 4});
  const Compute c = compute(Shape{4}, [&](const std::vector<IndexExpr>& i) {
    return p(i[0] + 3, IndexExpr(0));
  });
  EXPECT_THROW(evaluate(c, {&in}), Error);
  // Input shape mismatch.
  TensorF16 wrong(Shape{4, 5});
  const Compute c2 = compute(Shape{4}, [&](const std::vector<IndexExpr>& i) {
    return p(i[0], IndexExpr(0));
  });
  EXPECT_THROW(evaluate(c2, {&wrong}), Error);
  // Nested reductions rejected.
  const auto r1 = reduce_axis(2, "r1");
  EXPECT_THROW(
      max(max(p(IndexExpr(0), r1), {r1}), {reduce_axis(2, "r2")}), Error);
}

}  // namespace
}  // namespace davinci::akg::dsl
