// Unit tests for the kernel-lowering helpers in kernels/detail.h: the
// strided 16-lane forms the baselines use and the saturated row-strided
// forms the Sw == 1 fast paths use.
#include "kernels/detail.h"

#include <gtest/gtest.h>

#include "sim/ai_core.h"

namespace davinci::kernels {
namespace {

class HelperTest : public ::testing::Test {
 protected:
  HelperTest() : core_(0, ArchConfig::ascend910(), CostModel::calibrated()) {}

  Span<Float16> alloc_iota(std::int64_t n, float base = 0.0f) {
    auto s = core_.ub().alloc<Float16>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      s.at(i) = Float16(base + static_cast<float>(i % 1024));
    }
    return s;
  }

  AiCore core_;
};

TEST_F(HelperTest, Strided16BinaryGathersGroups) {
  // dst[g*16 + c] = max(dst, src[g*32 + c]): gather every other 16-group.
  auto src = alloc_iota(8 * 32);
  auto dst = core_.ub().alloc<Float16>(8 * 16);
  core_.vdup_flat(dst, Float16(-1000.0f), 8 * 16);
  detail::strided16_binary(core_, VecOp::kMax, dst, 16, dst, 16, src, 32, 8);
  for (std::int64_t g = 0; g < 8; ++g) {
    for (std::int64_t c = 0; c < 16; ++c) {
      EXPECT_EQ(dst.at(g * 16 + c).to_float(),
                static_cast<float>(g * 32 + c));
    }
  }
}

TEST_F(HelperTest, Strided16BinarySplitsAtMaxRepeat) {
  // 300 groups > max_repeat 255 -> two instructions + one scalar reissue.
  auto src = core_.ub().alloc<Float16>(300 * 16);
  auto dst = core_.ub().alloc<Float16>(300 * 16);
  core_.vdup_flat(src, Float16(2.0f), 300 * 16);
  core_.vdup_flat(dst, Float16(1.0f), 300 * 16);
  const auto before = core_.stats().vector_instrs;
  detail::strided16_binary(core_, VecOp::kAdd, dst, 16, dst, 16, src, 16,
                           300);
  EXPECT_EQ(core_.stats().vector_instrs - before, 2);
  EXPECT_EQ(dst.at(299 * 16).to_float(), 3.0f);
}

TEST_F(HelperTest, Strided16CopyScattersIntoPlanes) {
  auto src = alloc_iota(6 * 48);
  auto dst = core_.ub().alloc<Float16>(6 * 16);
  detail::strided16_copy(core_, dst, 16, src, 48, 6);
  for (std::int64_t g = 0; g < 6; ++g) {
    EXPECT_EQ(dst.at(g * 16).to_float(), static_cast<float>(g * 48));
  }
}

TEST_F(HelperTest, RowStridedBinaryCoversWholeRows) {
  // 5 rows of 200 elements, source rows 272 apart: two column chunks
  // (128 + 72 lanes), each one instruction with repeat 5.
  const std::int64_t rows = 5, row = 200, src_stride = 272;
  auto src = alloc_iota(rows * src_stride);
  auto dst = core_.ub().alloc<Float16>(rows * row);
  core_.vdup_flat(dst, Float16(-1000.0f), rows * row);
  const auto before = core_.stats().vector_instrs;
  detail::row_strided_binary(core_, VecOp::kMax, dst, row, dst, row, src,
                             src_stride, rows, row);
  EXPECT_EQ(core_.stats().vector_instrs - before, 2);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t i = 0; i < row; ++i) {
      EXPECT_EQ(dst.at(r * row + i).to_float(),
                static_cast<float>((r * src_stride + i) % 1024))
          << r << "," << i;
    }
  }
}

TEST_F(HelperTest, RowStridedBinaryAccumulatesInPlace) {
  // dst == src0 with the same strides: reduction across repeated calls.
  const std::int64_t rows = 3, row = 160;
  auto a = core_.ub().alloc<Float16>(rows * row);
  auto b = core_.ub().alloc<Float16>(rows * row);
  core_.vdup_flat(a, Float16(1.0f), rows * row);
  core_.vdup_flat(b, Float16(5.0f), rows * row);
  detail::row_strided_binary(core_, VecOp::kMax, a, row, a, row, b, row,
                             rows, row);
  EXPECT_EQ(a.at(rows * row - 1).to_float(), 5.0f);
}

TEST_F(HelperTest, RowStridedCopyMatchesManual) {
  const std::int64_t rows = 4, row = 96, src_stride = 130;
  auto src = alloc_iota(rows * src_stride, 1.0f);
  auto dst = core_.ub().alloc<Float16>(rows * row);
  detail::row_strided_copy(core_, dst, row, src, src_stride, rows, row);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t i = 0; i < row; ++i) {
      EXPECT_EQ(dst.at(r * row + i).bits(), src.at(r * src_stride + i).bits());
    }
  }
}

TEST_F(HelperTest, RowStridedSplitsRowsAtMaxRepeat) {
  ArchConfig arch = ArchConfig::ascend910();
  arch.max_repeat = 4;
  AiCore core(0, arch, CostModel::calibrated());
  const std::int64_t rows = 10, row = 64;
  auto src = core.ub().alloc<Float16>(rows * row);
  auto dst = core.ub().alloc<Float16>(rows * row);
  core.vdup_flat(src, Float16(3.0f), rows * row);
  core.vdup_flat(dst, Float16(), rows * row);
  const auto before = core.stats().vector_instrs;
  detail::row_strided_binary(core, VecOp::kAdd, dst, row, dst, row, src, row,
                             rows, row);
  // One column chunk (64 lanes), 10 rows at max repeat 4 -> 3 instructions.
  EXPECT_EQ(core.stats().vector_instrs - before, 3);
  EXPECT_EQ(dst.at(9 * row).to_float(), 3.0f);
}

TEST_F(HelperTest, ReducePlanesFoldsEachPlaneOnce) {
  const std::int64_t plane = 256, planes = 4;
  auto cols = core_.ub().alloc<Float16>(planes * plane);
  for (std::int64_t k = 0; k < planes; ++k) {
    for (std::int64_t i = 0; i < plane; ++i) {
      cols.at(k * plane + i) = Float16(static_cast<float>(k == 2 ? 9 : k));
    }
  }
  auto acc = core_.ub().alloc<Float16>(plane);
  core_.vdup_flat(acc, Float16::lowest(), plane);
  detail::reduce_planes(core_, VecOp::kMax, acc, cols, planes, plane);
  for (std::int64_t i = 0; i < plane; ++i) {
    EXPECT_EQ(acc.at(i).to_float(), 9.0f);
  }
}

}  // namespace
}  // namespace davinci::kernels
