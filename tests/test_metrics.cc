// Cycle attribution and metrics-JSON invariants (docs/OBSERVABILITY.md):
// per-pipe buckets must sum exactly to the attribution horizon for every
// kernel, the critical path must be deterministic and account for the
// whole makespan, and the serialized metrics must round-trip through the
// JSON parser with the invariants intact.
#include <gtest/gtest.h>

#include <string>

#include "common/json.h"
#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "sim/metrics.h"
#include "sim/metrics_registry.h"
#include "tensor/fractal.h"

namespace davinci {
namespace {

TensorF16 inception_input() {
  // InceptionV3 (35, 35, 288) -- the paper's largest Figure 7a shape.
  TensorF16 in(Shape{1, c1_of(288), 35, 35, kC0});
  in.fill_random_ints(1);
  return in;
}

// Every pipe of every used core decomposes into busy/wait/flag/idle
// buckets summing exactly to the device horizon; the critical core's
// chain covers the horizon end to end.
void check_attribution(const DeviceAttribution& a) {
  ASSERT_FALSE(a.cores.empty());
  for (const CoreAttribution& ca : a.cores) {
    EXPECT_LE(ca.makespan, a.horizon);
    for (int p = 0; p < PipeScheduler::kNumPipes; ++p) {
      const PipeBuckets& b = ca.pipes[p];
      EXPECT_GE(b.busy, 0);
      EXPECT_GE(b.wait, 0);
      EXPECT_GE(b.flag, 0);
      EXPECT_GE(b.idle, 0);
      EXPECT_EQ(b.total(), a.horizon)
          << "core " << ca.core << " pipe "
          << to_string(static_cast<Pipe>(p));
    }
  }
  ASSERT_GE(a.critical_core, 0);
  ASSERT_LT(static_cast<std::size_t>(a.critical_core), a.cores.size());
  EXPECT_EQ(a.cores[a.critical_core].makespan, a.horizon);
  if (!a.path_truncated) {
    std::int64_t covered = 0;
    std::int64_t prev_end = 0;
    for (const CritSegment& s : a.critical_path) {
      EXPECT_EQ(s.start, prev_end) << "chain must be gapless";
      EXPECT_GT(s.length(), 0);
      covered += s.length();
      prev_end = s.end;
    }
    EXPECT_EQ(covered, a.horizon);
  }
}

TEST(Attribution, BucketsSumToMakespanForwardKernels) {
  for (bool db : {true, false}) {
    Device dev;
    dev.set_double_buffer(db);
    const TensorF16 in = inception_input();
    const Window2d w = Window2d::pool(3, 2);
    for (akg::PoolImpl impl : {akg::PoolImpl::kDirect, akg::PoolImpl::kIm2col,
                               akg::PoolImpl::kExpansion}) {
      auto r = kernels::maxpool_forward(dev, in, w, impl);
      SCOPED_TRACE(std::string(akg::to_string(impl)) +
                   (db ? " db" : " no-db"));
      check_attribution(r.run.attribution);
    }
    auto avg = kernels::avgpool_forward(dev, in, w, akg::PoolImpl::kIm2col);
    check_attribution(avg.run.attribution);
  }
}

TEST(Attribution, BucketsSumToMakespanBackwardKernels) {
  for (bool db : {true, false}) {
    Device dev;
    dev.set_double_buffer(db);
    const TensorF16 in = inception_input();
    const Window2d w = Window2d::pool(3, 2);
    const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
    TensorF16 grad(Shape{1, c1_of(288), w.out_h(35), w.out_w(35), kC0});
    grad.fill_random_ints(7, 0, 5);
    for (kernels::MergeImpl merge :
         {kernels::MergeImpl::kVadd, kernels::MergeImpl::kCol2im}) {
      auto r = kernels::maxpool_backward(dev, mask, grad, w, 35, 35, merge);
      SCOPED_TRACE(db ? "db" : "no-db");
      check_attribution(r.run.attribution);
    }
  }
}

TEST(Attribution, HorizonMatchesDeviceCyclesUnderOverlap) {
  Device dev;
  const TensorF16 in = inception_input();
  auto r = kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                                    akg::PoolImpl::kIm2col);
  EXPECT_EQ(r.run.attribution.horizon, r.run.device_cycles);
}

TEST(Attribution, CriticalPathIsDeterministic) {
  auto run_once = [] {
    Device dev;
    const TensorF16 in = inception_input();
    auto r = kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                                      akg::PoolImpl::kIm2col);
    return r.run.attribution;
  };
  const DeviceAttribution a = run_once();
  const DeviceAttribution b = run_once();
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.critical_core, b.critical_core);
  ASSERT_EQ(a.critical_path.size(), b.critical_path.size());
  ASSERT_FALSE(a.critical_path.empty());
  for (std::size_t i = 0; i < a.critical_path.size(); ++i) {
    EXPECT_EQ(a.critical_path[i].pipe, b.critical_path[i].pipe);
    EXPECT_EQ(a.critical_path[i].kind, b.critical_path[i].kind);
    EXPECT_EQ(a.critical_path[i].start, b.critical_path[i].start);
    EXPECT_EQ(a.critical_path[i].end, b.critical_path[i].end);
  }
}

// Both forward implementations move the same GM footprint; im2col
// finishes sooner, so its achieved bandwidth must be strictly higher and
// neither can exceed the arch peak.
TEST(RooflineCounters, Im2colAchievesHigherBandwidthThanDirect) {
  Device dev;
  const TensorF16 in = inception_input();
  const Window2d w = Window2d::pool(3, 2);
  auto direct = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
  auto im2col = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kIm2col);

  const Roofline rd = compute_roofline(direct.run.aggregate, dev.arch(),
                                       direct.run.device_cycles,
                                       direct.run.cores_used);
  const Roofline ri = compute_roofline(im2col.run.aggregate, dev.arch(),
                                       im2col.run.device_cycles,
                                       im2col.run.cores_used);
  EXPECT_GT(rd.gm_bytes, 0);
  EXPECT_EQ(rd.gm_bytes, ri.gm_bytes);
  EXPECT_GE(rd.mte_bytes, rd.gm_bytes);
  EXPECT_GT(ri.achieved_gm_bytes_per_cycle, rd.achieved_gm_bytes_per_cycle);
  EXPECT_LE(ri.achieved_gm_bytes_per_cycle, ri.peak_gm_bytes_per_cycle);
  EXPECT_GT(rd.arithmetic_intensity, 0.0);
  EXPECT_GT(rd.machine_balance, 0.0);
  // klass() is always one of the two documented labels.
  for (const Roofline& r : {rd, ri}) {
    const std::string k = r.klass();
    EXPECT_TRUE(k == "transfer-bound" || k == "vector-bound") << k;
  }
  // The aggregate route counters are what the roofline summed.
  EXPECT_EQ(direct.run.aggregate.traffic.gm_total(), rd.gm_bytes);
  EXPECT_EQ(direct.run.aggregate.traffic.mte_total(), rd.mte_bytes);
}

TEST(RooflineCounters, ScuChargesIm2colBytes) {
  Device dev;
  const TensorF16 in = inception_input();
  auto direct = kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                                         akg::PoolImpl::kDirect);
  auto im2col = kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                                         akg::PoolImpl::kIm2col);
  EXPECT_EQ(direct.run.aggregate.traffic.im2col_bytes, 0);
  EXPECT_GT(im2col.run.aggregate.traffic.im2col_bytes, 0);
}

TEST(MetricsJson, RoundTripsWithInvariantsIntact) {
  Device dev;
  const TensorF16 in = inception_input();
  const Window2d w = Window2d::pool(3, 2);
  auto direct = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
  auto im2col = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kIm2col);

  MetricsRegistry reg;
  reg.add("direct", direct.run, dev.arch());
  reg.add("im2col", im2col.run, dev.arch());
  const json::Value doc = json::parse(reg.to_json());

  EXPECT_EQ(doc.at("schema").as_string(), "davinci.metrics");
  EXPECT_EQ(doc.at("schema_version").as_int(), MetricsRegistry::kSchemaVersion);
  const json::Array& entries = doc.at("entries").as_array();
  ASSERT_EQ(entries.size(), 2u);

  for (const json::Value& e : entries) {
    EXPECT_GT(e.at("cycles").as_int(), 0);
    EXPECT_GE(e.at("cycles_serial").as_int(), e.at("cycles").as_int());
    const json::Value& a = e.at("attribution");
    const std::int64_t horizon = a.at("horizon").as_int();
    EXPECT_EQ(horizon, e.at("cycles").as_int());
    const json::Array& cores = a.at("cores").as_array();
    ASSERT_FALSE(cores.empty());
    for (const json::Value& core : cores) {
      const json::Value& pipes = core.at("pipes");
      for (const char* pipe :
           {"MTE-in", "SCU", "Vector", "Cube", "MTE-out", "Sync"}) {
        const json::Value& b = pipes.at(pipe);
        EXPECT_EQ(b.at("busy").as_int() + b.at("wait").as_int() +
                      b.at("flag").as_int() + b.at("idle").as_int(),
                  horizon)
            << pipe;
      }
    }
    // The summary keeps exact totals even when the emitted path is
    // head-truncated at kMaxPathSegments.
    const json::Value& sum = a.at("critical_path_summary");
    EXPECT_EQ(sum.at("busy_cycles").as_int() + sum.at("stall_cycles").as_int(),
              horizon);
    EXPECT_LE(a.at("critical_path").as_array().size(),
              MetricsRegistry::kMaxPathSegments);
    EXPECT_GE(sum.at("segments").as_int(), sum.at("emitted").as_int());
    // Roofline block present with the documented class labels.
    const std::string k = e.at("roofline").at("class").as_string();
    EXPECT_TRUE(k == "transfer-bound" || k == "vector-bound") << k;
  }
}

// Schema v4 host-phase buckets: every kernel driver stamps where its host
// time went, and the four buckets partition host_ns exactly -- both on
// the RunResult itself and in the serialized metrics entry.
TEST(MetricsJson, HostPhaseBucketsPartitionHostNs) {
  Device dev;
  const TensorF16 in = inception_input();
  const Window2d w = Window2d::pool(3, 2);
  auto r = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kIm2col);

  EXPECT_GE(r.run.host_alloc_ns, 0);
  EXPECT_GE(r.run.host_plan_ns, 0);
  EXPECT_GE(r.run.host_validate_ns, 0);
  EXPECT_GT(r.run.host_execute_ns, 0);
  EXPECT_EQ(r.run.host_alloc_ns + r.run.host_plan_ns +
                r.run.host_validate_ns + r.run.host_execute_ns,
            r.run.host_ns);

  MetricsRegistry reg;
  reg.add("im2col", r.run, dev.arch());
  const json::Value doc = json::parse(reg.to_json());
  const json::Value& e = doc.at("entries").as_array().at(0);
  EXPECT_EQ(e.at("host_alloc_ns").as_int() + e.at("host_plan_ns").as_int() +
                e.at("host_validate_ns").as_int() +
                e.at("host_execute_ns").as_int(),
            e.at("host_ns").as_int());
}

}  // namespace
}  // namespace davinci
