# Empty compiler generated dependencies file for train_pooling_layer.
# This may be replaced when dependencies are built.
