file(REMOVE_RECURSE
  "CMakeFiles/train_pooling_layer.dir/train_pooling_layer.cpp.o"
  "CMakeFiles/train_pooling_layer.dir/train_pooling_layer.cpp.o.d"
  "train_pooling_layer"
  "train_pooling_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_pooling_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
