file(REMOVE_RECURSE
  "CMakeFiles/dsl_to_device.dir/dsl_to_device.cpp.o"
  "CMakeFiles/dsl_to_device.dir/dsl_to_device.cpp.o.d"
  "dsl_to_device"
  "dsl_to_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_to_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
