# Empty compiler generated dependencies file for dsl_to_device.
# This may be replaced when dependencies are built.
