file(REMOVE_RECURSE
  "CMakeFiles/inception_pooling.dir/inception_pooling.cpp.o"
  "CMakeFiles/inception_pooling.dir/inception_pooling.cpp.o.d"
  "inception_pooling"
  "inception_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inception_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
