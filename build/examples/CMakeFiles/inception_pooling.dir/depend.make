# Empty dependencies file for inception_pooling.
# This may be replaced when dependencies are built.
