file(REMOVE_RECURSE
  "CMakeFiles/conv_im2col_cube.dir/conv_im2col_cube.cpp.o"
  "CMakeFiles/conv_im2col_cube.dir/conv_im2col_cube.cpp.o.d"
  "conv_im2col_cube"
  "conv_im2col_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_im2col_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
