# Empty dependencies file for conv_im2col_cube.
# This may be replaced when dependencies are built.
