# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for conv_im2col_cube.
