file(REMOVE_RECURSE
  "CMakeFiles/cnn_stem.dir/cnn_stem.cpp.o"
  "CMakeFiles/cnn_stem.dir/cnn_stem.cpp.o.d"
  "cnn_stem"
  "cnn_stem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_stem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
