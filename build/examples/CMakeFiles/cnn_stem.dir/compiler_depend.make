# Empty compiler generated dependencies file for cnn_stem.
# This may be replaced when dependencies are built.
