file(REMOVE_RECURSE
  "CMakeFiles/inspect_lowering.dir/inspect_lowering.cpp.o"
  "CMakeFiles/inspect_lowering.dir/inspect_lowering.cpp.o.d"
  "inspect_lowering"
  "inspect_lowering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_lowering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
