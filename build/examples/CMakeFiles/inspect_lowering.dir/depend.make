# Empty dependencies file for inspect_lowering.
# This may be replaced when dependencies are built.
