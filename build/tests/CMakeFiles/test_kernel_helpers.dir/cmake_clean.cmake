file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_helpers.dir/test_kernel_helpers.cc.o"
  "CMakeFiles/test_kernel_helpers.dir/test_kernel_helpers.cc.o.d"
  "test_kernel_helpers"
  "test_kernel_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
