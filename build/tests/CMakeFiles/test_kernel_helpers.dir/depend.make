# Empty dependencies file for test_kernel_helpers.
# This may be replaced when dependencies are built.
