file(REMOVE_RECURSE
  "CMakeFiles/test_ref_conv.dir/test_ref_conv.cc.o"
  "CMakeFiles/test_ref_conv.dir/test_ref_conv.cc.o.d"
  "test_ref_conv"
  "test_ref_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
