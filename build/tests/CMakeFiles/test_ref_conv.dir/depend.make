# Empty dependencies file for test_ref_conv.
# This may be replaced when dependencies are built.
