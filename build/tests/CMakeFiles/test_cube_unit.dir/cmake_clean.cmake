file(REMOVE_RECURSE
  "CMakeFiles/test_cube_unit.dir/test_cube_unit.cc.o"
  "CMakeFiles/test_cube_unit.dir/test_cube_unit.cc.o.d"
  "test_cube_unit"
  "test_cube_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cube_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
