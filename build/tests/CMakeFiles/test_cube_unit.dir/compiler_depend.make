# Empty compiler generated dependencies file for test_cube_unit.
# This may be replaced when dependencies are built.
