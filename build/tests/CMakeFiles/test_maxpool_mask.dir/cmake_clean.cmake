file(REMOVE_RECURSE
  "CMakeFiles/test_maxpool_mask.dir/test_maxpool_mask.cc.o"
  "CMakeFiles/test_maxpool_mask.dir/test_maxpool_mask.cc.o.d"
  "test_maxpool_mask"
  "test_maxpool_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxpool_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
