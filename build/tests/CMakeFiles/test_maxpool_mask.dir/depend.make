# Empty dependencies file for test_maxpool_mask.
# This may be replaced when dependencies are built.
