file(REMOVE_RECURSE
  "CMakeFiles/test_scratch.dir/test_scratch.cc.o"
  "CMakeFiles/test_scratch.dir/test_scratch.cc.o.d"
  "test_scratch"
  "test_scratch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scratch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
