# Empty compiler generated dependencies file for test_scratch.
# This may be replaced when dependencies are built.
