# Empty compiler generated dependencies file for test_maxpool_backward.
# This may be replaced when dependencies are built.
