file(REMOVE_RECURSE
  "CMakeFiles/test_maxpool_backward.dir/test_maxpool_backward.cc.o"
  "CMakeFiles/test_maxpool_backward.dir/test_maxpool_backward.cc.o.d"
  "test_maxpool_backward"
  "test_maxpool_backward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxpool_backward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
