file(REMOVE_RECURSE
  "CMakeFiles/test_im2col_mode0.dir/test_im2col_mode0.cc.o"
  "CMakeFiles/test_im2col_mode0.dir/test_im2col_mode0.cc.o.d"
  "test_im2col_mode0"
  "test_im2col_mode0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_im2col_mode0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
