# Empty dependencies file for test_im2col_mode0.
# This may be replaced when dependencies are built.
