file(REMOVE_RECURSE
  "CMakeFiles/test_conv2d_backward.dir/test_conv2d_backward.cc.o"
  "CMakeFiles/test_conv2d_backward.dir/test_conv2d_backward.cc.o.d"
  "test_conv2d_backward"
  "test_conv2d_backward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv2d_backward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
