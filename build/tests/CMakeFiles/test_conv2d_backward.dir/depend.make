# Empty dependencies file for test_conv2d_backward.
# This may be replaced when dependencies are built.
