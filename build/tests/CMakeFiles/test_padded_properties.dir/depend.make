# Empty dependencies file for test_padded_properties.
# This may be replaced when dependencies are built.
