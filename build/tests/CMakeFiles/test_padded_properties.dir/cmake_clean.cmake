file(REMOVE_RECURSE
  "CMakeFiles/test_padded_properties.dir/test_padded_properties.cc.o"
  "CMakeFiles/test_padded_properties.dir/test_padded_properties.cc.o.d"
  "test_padded_properties"
  "test_padded_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_padded_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
