file(REMOVE_RECURSE
  "CMakeFiles/test_akg_tiling.dir/test_akg_tiling.cc.o"
  "CMakeFiles/test_akg_tiling.dir/test_akg_tiling.cc.o.d"
  "test_akg_tiling"
  "test_akg_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_akg_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
