# Empty compiler generated dependencies file for test_akg_tiling.
# This may be replaced when dependencies are built.
