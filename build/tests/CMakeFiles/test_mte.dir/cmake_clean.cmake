file(REMOVE_RECURSE
  "CMakeFiles/test_mte.dir/test_mte.cc.o"
  "CMakeFiles/test_mte.dir/test_mte.cc.o.d"
  "test_mte"
  "test_mte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
