# Empty dependencies file for test_mte.
# This may be replaced when dependencies are built.
