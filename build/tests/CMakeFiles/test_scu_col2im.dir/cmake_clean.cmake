file(REMOVE_RECURSE
  "CMakeFiles/test_scu_col2im.dir/test_scu_col2im.cc.o"
  "CMakeFiles/test_scu_col2im.dir/test_scu_col2im.cc.o.d"
  "test_scu_col2im"
  "test_scu_col2im.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scu_col2im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
