# Empty compiler generated dependencies file for test_scu_col2im.
# This may be replaced when dependencies are built.
