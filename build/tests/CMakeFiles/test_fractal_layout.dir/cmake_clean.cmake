file(REMOVE_RECURSE
  "CMakeFiles/test_fractal_layout.dir/test_fractal_layout.cc.o"
  "CMakeFiles/test_fractal_layout.dir/test_fractal_layout.cc.o.d"
  "test_fractal_layout"
  "test_fractal_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fractal_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
