# Empty compiler generated dependencies file for test_fractal_layout.
# This may be replaced when dependencies are built.
