# Empty dependencies file for test_fused_conv_pool.
# This may be replaced when dependencies are built.
