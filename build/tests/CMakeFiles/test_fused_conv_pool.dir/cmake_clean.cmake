file(REMOVE_RECURSE
  "CMakeFiles/test_fused_conv_pool.dir/test_fused_conv_pool.cc.o"
  "CMakeFiles/test_fused_conv_pool.dir/test_fused_conv_pool.cc.o.d"
  "test_fused_conv_pool"
  "test_fused_conv_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fused_conv_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
