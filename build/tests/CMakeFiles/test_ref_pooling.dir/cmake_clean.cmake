file(REMOVE_RECURSE
  "CMakeFiles/test_ref_pooling.dir/test_ref_pooling.cc.o"
  "CMakeFiles/test_ref_pooling.dir/test_ref_pooling.cc.o.d"
  "test_ref_pooling"
  "test_ref_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
