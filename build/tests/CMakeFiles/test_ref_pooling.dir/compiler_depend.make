# Empty compiler generated dependencies file for test_ref_pooling.
# This may be replaced when dependencies are built.
