
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_resilience.cc" "tests/CMakeFiles/test_resilience.dir/test_resilience.cc.o" "gcc" "tests/CMakeFiles/test_resilience.dir/test_resilience.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/davinci_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/akg/CMakeFiles/davinci_akg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/davinci_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/davinci_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/nets/CMakeFiles/davinci_nets.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/davinci_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
