# Empty compiler generated dependencies file for test_differential_sweep.
# This may be replaced when dependencies are built.
