file(REMOVE_RECURSE
  "CMakeFiles/test_differential_sweep.dir/test_differential_sweep.cc.o"
  "CMakeFiles/test_differential_sweep.dir/test_differential_sweep.cc.o.d"
  "test_differential_sweep"
  "test_differential_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differential_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
