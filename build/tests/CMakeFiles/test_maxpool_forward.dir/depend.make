# Empty dependencies file for test_maxpool_forward.
# This may be replaced when dependencies are built.
