file(REMOVE_RECURSE
  "CMakeFiles/test_maxpool_forward.dir/test_maxpool_forward.cc.o"
  "CMakeFiles/test_maxpool_forward.dir/test_maxpool_forward.cc.o.d"
  "test_maxpool_forward"
  "test_maxpool_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxpool_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
