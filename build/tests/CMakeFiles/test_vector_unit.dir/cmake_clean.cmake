file(REMOVE_RECURSE
  "CMakeFiles/test_vector_unit.dir/test_vector_unit.cc.o"
  "CMakeFiles/test_vector_unit.dir/test_vector_unit.cc.o.d"
  "test_vector_unit"
  "test_vector_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
