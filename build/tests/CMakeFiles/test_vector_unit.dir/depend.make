# Empty dependencies file for test_vector_unit.
# This may be replaced when dependencies are built.
