# Empty dependencies file for test_avgpool.
# This may be replaced when dependencies are built.
