file(REMOVE_RECURSE
  "CMakeFiles/test_avgpool.dir/test_avgpool.cc.o"
  "CMakeFiles/test_avgpool.dir/test_avgpool.cc.o.d"
  "test_avgpool"
  "test_avgpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avgpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
