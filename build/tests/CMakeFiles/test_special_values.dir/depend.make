# Empty dependencies file for test_special_values.
# This may be replaced when dependencies are built.
