file(REMOVE_RECURSE
  "CMakeFiles/test_special_values.dir/test_special_values.cc.o"
  "CMakeFiles/test_special_values.dir/test_special_values.cc.o.d"
  "test_special_values"
  "test_special_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_special_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
