# Empty compiler generated dependencies file for test_scu_sweep.
# This may be replaced when dependencies are built.
