file(REMOVE_RECURSE
  "CMakeFiles/test_scu_sweep.dir/test_scu_sweep.cc.o"
  "CMakeFiles/test_scu_sweep.dir/test_scu_sweep.cc.o.d"
  "test_scu_sweep"
  "test_scu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
