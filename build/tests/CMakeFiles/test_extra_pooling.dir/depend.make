# Empty dependencies file for test_extra_pooling.
# This may be replaced when dependencies are built.
