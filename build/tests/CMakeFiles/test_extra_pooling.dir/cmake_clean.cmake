file(REMOVE_RECURSE
  "CMakeFiles/test_extra_pooling.dir/test_extra_pooling.cc.o"
  "CMakeFiles/test_extra_pooling.dir/test_extra_pooling.cc.o.d"
  "test_extra_pooling"
  "test_extra_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
