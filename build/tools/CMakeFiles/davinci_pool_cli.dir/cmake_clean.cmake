file(REMOVE_RECURSE
  "CMakeFiles/davinci_pool_cli.dir/davinci_pool_cli.cc.o"
  "CMakeFiles/davinci_pool_cli.dir/davinci_pool_cli.cc.o.d"
  "davinci_pool_cli"
  "davinci_pool_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davinci_pool_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
