# Empty dependencies file for davinci_pool_cli.
# This may be replaced when dependencies are built.
