# Empty dependencies file for bench_ablation_conv_cube.
# This may be replaced when dependencies are built.
