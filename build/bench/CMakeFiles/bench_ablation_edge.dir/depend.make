# Empty dependencies file for bench_ablation_edge.
# This may be replaced when dependencies are built.
