file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_edge.dir/bench_ablation_edge.cc.o"
  "CMakeFiles/bench_ablation_edge.dir/bench_ablation_edge.cc.o.d"
  "bench_ablation_edge"
  "bench_ablation_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
