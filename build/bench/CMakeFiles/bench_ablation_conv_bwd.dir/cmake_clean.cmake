file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conv_bwd.dir/bench_ablation_conv_bwd.cc.o"
  "CMakeFiles/bench_ablation_conv_bwd.dir/bench_ablation_conv_bwd.cc.o.d"
  "bench_ablation_conv_bwd"
  "bench_ablation_conv_bwd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conv_bwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
