# Empty dependencies file for bench_ablation_conv_bwd.
# This may be replaced when dependencies are built.
