# Empty compiler generated dependencies file for bench_fig7b_maxpool_mask.
# This may be replaced when dependencies are built.
