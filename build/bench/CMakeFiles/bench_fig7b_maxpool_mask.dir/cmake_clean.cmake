file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_maxpool_mask.dir/bench_fig7b_maxpool_mask.cc.o"
  "CMakeFiles/bench_fig7b_maxpool_mask.dir/bench_fig7b_maxpool_mask.cc.o.d"
  "bench_fig7b_maxpool_mask"
  "bench_fig7b_maxpool_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_maxpool_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
