# Empty compiler generated dependencies file for bench_fig7c_maxpool_backward.
# This may be replaced when dependencies are built.
