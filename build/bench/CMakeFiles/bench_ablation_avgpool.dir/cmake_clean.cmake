file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_avgpool.dir/bench_ablation_avgpool.cc.o"
  "CMakeFiles/bench_ablation_avgpool.dir/bench_ablation_avgpool.cc.o.d"
  "bench_ablation_avgpool"
  "bench_ablation_avgpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_avgpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
