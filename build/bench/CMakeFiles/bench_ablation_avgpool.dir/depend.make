# Empty dependencies file for bench_ablation_avgpool.
# This may be replaced when dependencies are built.
