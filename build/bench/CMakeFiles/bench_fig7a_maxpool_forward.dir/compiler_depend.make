# Empty compiler generated dependencies file for bench_fig7a_maxpool_forward.
# This may be replaced when dependencies are built.
