file(REMOVE_RECURSE
  "libdavinci_bench_common.a"
)
