# Empty compiler generated dependencies file for davinci_bench_common.
# This may be replaced when dependencies are built.
