file(REMOVE_RECURSE
  "CMakeFiles/davinci_bench_common.dir/harness.cc.o"
  "CMakeFiles/davinci_bench_common.dir/harness.cc.o.d"
  "libdavinci_bench_common.a"
  "libdavinci_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davinci_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
