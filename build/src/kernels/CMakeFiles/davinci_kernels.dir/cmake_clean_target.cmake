file(REMOVE_RECURSE
  "libdavinci_kernels.a"
)
