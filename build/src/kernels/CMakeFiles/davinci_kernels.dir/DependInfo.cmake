
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/avgpool.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/avgpool.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/avgpool.cc.o.d"
  "/root/repo/src/kernels/conv2d.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/conv2d.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/conv2d.cc.o.d"
  "/root/repo/src/kernels/conv2d_bwd.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/conv2d_bwd.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/conv2d_bwd.cc.o.d"
  "/root/repo/src/kernels/extra_pooling.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/extra_pooling.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/extra_pooling.cc.o.d"
  "/root/repo/src/kernels/fused_conv_pool.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/fused_conv_pool.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/fused_conv_pool.cc.o.d"
  "/root/repo/src/kernels/lower.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/lower.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/lower.cc.o.d"
  "/root/repo/src/kernels/maxpool_bwd.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/maxpool_bwd.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/maxpool_bwd.cc.o.d"
  "/root/repo/src/kernels/maxpool_fwd.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/maxpool_fwd.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/maxpool_fwd.cc.o.d"
  "/root/repo/src/kernels/maxpool_mask.cc" "src/kernels/CMakeFiles/davinci_kernels.dir/maxpool_mask.cc.o" "gcc" "src/kernels/CMakeFiles/davinci_kernels.dir/maxpool_mask.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/davinci_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/akg/CMakeFiles/davinci_akg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/davinci_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
