# Empty dependencies file for davinci_kernels.
# This may be replaced when dependencies are built.
