file(REMOVE_RECURSE
  "CMakeFiles/davinci_kernels.dir/avgpool.cc.o"
  "CMakeFiles/davinci_kernels.dir/avgpool.cc.o.d"
  "CMakeFiles/davinci_kernels.dir/conv2d.cc.o"
  "CMakeFiles/davinci_kernels.dir/conv2d.cc.o.d"
  "CMakeFiles/davinci_kernels.dir/conv2d_bwd.cc.o"
  "CMakeFiles/davinci_kernels.dir/conv2d_bwd.cc.o.d"
  "CMakeFiles/davinci_kernels.dir/extra_pooling.cc.o"
  "CMakeFiles/davinci_kernels.dir/extra_pooling.cc.o.d"
  "CMakeFiles/davinci_kernels.dir/fused_conv_pool.cc.o"
  "CMakeFiles/davinci_kernels.dir/fused_conv_pool.cc.o.d"
  "CMakeFiles/davinci_kernels.dir/lower.cc.o"
  "CMakeFiles/davinci_kernels.dir/lower.cc.o.d"
  "CMakeFiles/davinci_kernels.dir/maxpool_bwd.cc.o"
  "CMakeFiles/davinci_kernels.dir/maxpool_bwd.cc.o.d"
  "CMakeFiles/davinci_kernels.dir/maxpool_fwd.cc.o"
  "CMakeFiles/davinci_kernels.dir/maxpool_fwd.cc.o.d"
  "CMakeFiles/davinci_kernels.dir/maxpool_mask.cc.o"
  "CMakeFiles/davinci_kernels.dir/maxpool_mask.cc.o.d"
  "libdavinci_kernels.a"
  "libdavinci_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davinci_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
