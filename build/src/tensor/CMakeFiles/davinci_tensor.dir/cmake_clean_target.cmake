file(REMOVE_RECURSE
  "libdavinci_tensor.a"
)
