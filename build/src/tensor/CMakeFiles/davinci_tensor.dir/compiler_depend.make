# Empty compiler generated dependencies file for davinci_tensor.
# This may be replaced when dependencies are built.
