file(REMOVE_RECURSE
  "CMakeFiles/davinci_tensor.dir/fractal.cc.o"
  "CMakeFiles/davinci_tensor.dir/fractal.cc.o.d"
  "libdavinci_tensor.a"
  "libdavinci_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davinci_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
