
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/akg/dsl.cc" "src/akg/CMakeFiles/davinci_akg.dir/dsl.cc.o" "gcc" "src/akg/CMakeFiles/davinci_akg.dir/dsl.cc.o.d"
  "/root/repo/src/akg/tiling.cc" "src/akg/CMakeFiles/davinci_akg.dir/tiling.cc.o" "gcc" "src/akg/CMakeFiles/davinci_akg.dir/tiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/davinci_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
