# Empty compiler generated dependencies file for davinci_akg.
# This may be replaced when dependencies are built.
