file(REMOVE_RECURSE
  "CMakeFiles/davinci_akg.dir/dsl.cc.o"
  "CMakeFiles/davinci_akg.dir/dsl.cc.o.d"
  "CMakeFiles/davinci_akg.dir/tiling.cc.o"
  "CMakeFiles/davinci_akg.dir/tiling.cc.o.d"
  "libdavinci_akg.a"
  "libdavinci_akg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davinci_akg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
