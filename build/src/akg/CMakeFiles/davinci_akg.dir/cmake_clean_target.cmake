file(REMOVE_RECURSE
  "libdavinci_akg.a"
)
