# CMake generated Testfile for 
# Source directory: /root/repo/src/akg
# Build directory: /root/repo/build/src/akg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
