# Empty dependencies file for davinci_sim.
# This may be replaced when dependencies are built.
