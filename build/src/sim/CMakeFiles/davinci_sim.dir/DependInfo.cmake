
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ai_core.cc" "src/sim/CMakeFiles/davinci_sim.dir/ai_core.cc.o" "gcc" "src/sim/CMakeFiles/davinci_sim.dir/ai_core.cc.o.d"
  "/root/repo/src/sim/cube_unit.cc" "src/sim/CMakeFiles/davinci_sim.dir/cube_unit.cc.o" "gcc" "src/sim/CMakeFiles/davinci_sim.dir/cube_unit.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/davinci_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/davinci_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/fault.cc" "src/sim/CMakeFiles/davinci_sim.dir/fault.cc.o" "gcc" "src/sim/CMakeFiles/davinci_sim.dir/fault.cc.o.d"
  "/root/repo/src/sim/scu.cc" "src/sim/CMakeFiles/davinci_sim.dir/scu.cc.o" "gcc" "src/sim/CMakeFiles/davinci_sim.dir/scu.cc.o.d"
  "/root/repo/src/sim/vector_unit.cc" "src/sim/CMakeFiles/davinci_sim.dir/vector_unit.cc.o" "gcc" "src/sim/CMakeFiles/davinci_sim.dir/vector_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/davinci_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
