file(REMOVE_RECURSE
  "CMakeFiles/davinci_sim.dir/ai_core.cc.o"
  "CMakeFiles/davinci_sim.dir/ai_core.cc.o.d"
  "CMakeFiles/davinci_sim.dir/cube_unit.cc.o"
  "CMakeFiles/davinci_sim.dir/cube_unit.cc.o.d"
  "CMakeFiles/davinci_sim.dir/device.cc.o"
  "CMakeFiles/davinci_sim.dir/device.cc.o.d"
  "CMakeFiles/davinci_sim.dir/fault.cc.o"
  "CMakeFiles/davinci_sim.dir/fault.cc.o.d"
  "CMakeFiles/davinci_sim.dir/scu.cc.o"
  "CMakeFiles/davinci_sim.dir/scu.cc.o.d"
  "CMakeFiles/davinci_sim.dir/vector_unit.cc.o"
  "CMakeFiles/davinci_sim.dir/vector_unit.cc.o.d"
  "libdavinci_sim.a"
  "libdavinci_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davinci_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
