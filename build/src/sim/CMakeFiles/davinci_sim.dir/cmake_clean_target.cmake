file(REMOVE_RECURSE
  "libdavinci_sim.a"
)
