file(REMOVE_RECURSE
  "libdavinci_nets.a"
)
