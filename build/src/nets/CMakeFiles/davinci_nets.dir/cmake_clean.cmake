file(REMOVE_RECURSE
  "CMakeFiles/davinci_nets.dir/cnn_tables.cc.o"
  "CMakeFiles/davinci_nets.dir/cnn_tables.cc.o.d"
  "CMakeFiles/davinci_nets.dir/pipeline.cc.o"
  "CMakeFiles/davinci_nets.dir/pipeline.cc.o.d"
  "libdavinci_nets.a"
  "libdavinci_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davinci_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
