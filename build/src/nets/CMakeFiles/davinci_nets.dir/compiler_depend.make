# Empty compiler generated dependencies file for davinci_nets.
# This may be replaced when dependencies are built.
