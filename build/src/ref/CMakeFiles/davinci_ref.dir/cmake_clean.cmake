file(REMOVE_RECURSE
  "CMakeFiles/davinci_ref.dir/conv_ref.cc.o"
  "CMakeFiles/davinci_ref.dir/conv_ref.cc.o.d"
  "CMakeFiles/davinci_ref.dir/im2col_ref.cc.o"
  "CMakeFiles/davinci_ref.dir/im2col_ref.cc.o.d"
  "CMakeFiles/davinci_ref.dir/pooling_ref.cc.o"
  "CMakeFiles/davinci_ref.dir/pooling_ref.cc.o.d"
  "libdavinci_ref.a"
  "libdavinci_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davinci_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
