file(REMOVE_RECURSE
  "libdavinci_ref.a"
)
