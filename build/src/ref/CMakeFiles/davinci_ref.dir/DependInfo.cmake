
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ref/conv_ref.cc" "src/ref/CMakeFiles/davinci_ref.dir/conv_ref.cc.o" "gcc" "src/ref/CMakeFiles/davinci_ref.dir/conv_ref.cc.o.d"
  "/root/repo/src/ref/im2col_ref.cc" "src/ref/CMakeFiles/davinci_ref.dir/im2col_ref.cc.o" "gcc" "src/ref/CMakeFiles/davinci_ref.dir/im2col_ref.cc.o.d"
  "/root/repo/src/ref/pooling_ref.cc" "src/ref/CMakeFiles/davinci_ref.dir/pooling_ref.cc.o" "gcc" "src/ref/CMakeFiles/davinci_ref.dir/pooling_ref.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/davinci_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
