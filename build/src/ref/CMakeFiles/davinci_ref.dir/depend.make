# Empty dependencies file for davinci_ref.
# This may be replaced when dependencies are built.
