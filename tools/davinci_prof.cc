// Attribution report viewer and perf-regression gate for the metrics /
// bench JSON files (docs/OBSERVABILITY.md).
//
//   davinci_prof <metrics-or-bench.json>
//       Pretty-prints the cycle-attribution / roofline report (metrics
//       schema) or the row table (bench JsonReport).
//
//   davinci_prof --diff <baseline.json> <candidate.json>
//                [--tol=0.05] [--tol:<metric>=X] [--include-host]
//       Compares the candidate against the baseline. Cycle-like metrics
//       (cycles, cycles_serial, busiest_unit_cycles, pipelined_bound,
//       horizon, makespan) regress the build when the candidate exceeds
//       the baseline by more than the tolerance; other numeric drifts are
//       reported but do not fail. host_* wall-clock fields are ignored
//       unless --include-host (the simulator is deterministic, the host
//       machine is not). --tol:<metric>=X overrides the tolerance for one
//       field name, e.g. --tol:cycles=0 for an exact cycle gate.
//
// Exit codes: 0 ok / no regression, 1 regression found, 2 usage or parse
// error. CI diffs every bench run against the committed baselines in
// bench/baselines/ (see .github/workflows/ci.yml).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/json.h"
#include "sim/prof_report.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  DV_CHECK(f.good()) << "cannot open " << path;
  std::ostringstream os;
  os << f.rdbuf();
  DV_CHECK(f.good() || f.eof()) << "failed reading " << path;
  return os.str();
}

void usage() {
  std::fprintf(stderr,
               "usage: davinci_prof <report.json>\n"
               "       davinci_prof --diff <baseline.json> <candidate.json>"
               " [--tol=0.05] [--tol:<metric>=X] [--include-host]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using davinci::DiffOptions;
  using davinci::DiffResult;

  bool diff = false;
  bool include_host = false;
  double tol = 0.05;
  std::map<std::string, double> per_metric;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff = true;
    } else if (arg == "--include-host") {
      include_host = true;
    } else if (arg.rfind("--tol:", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos || eq <= 6) {
        std::fprintf(stderr, "davinci_prof: malformed %s\n", arg.c_str());
        usage();
        return 2;
      }
      try {
        per_metric[arg.substr(6, eq - 6)] = std::stod(arg.substr(eq + 1));
      } catch (const std::exception&) {
        std::fprintf(stderr, "davinci_prof: bad tolerance in %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--tol=", 0) == 0) {
      try {
        tol = std::stod(arg.substr(6));
      } catch (const std::exception&) {
        std::fprintf(stderr, "davinci_prof: bad tolerance in %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "davinci_prof: unknown flag %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  try {
    if (diff) {
      if (files.size() != 2) {
        usage();
        return 2;
      }
      const davinci::json::Value base =
          davinci::json::parse(read_file(files[0]));
      const davinci::json::Value cand =
          davinci::json::parse(read_file(files[1]));
      DiffOptions opts;
      opts.tol = tol;
      opts.per_metric = per_metric;
      opts.include_host = include_host;
      const DiffResult r = davinci::diff_reports(base, cand, opts);
      std::printf("diff %s -> %s (tol %.4g%%, %d metrics)\n%s",
                  files[0].c_str(), files[1].c_str(), tol * 100.0,
                  r.compared, r.report.c_str());
      if (r.regressed) {
        std::printf("FAIL: %d regression(s)\n", r.regressions);
        return 1;
      }
      std::printf("OK\n");
      return 0;
    }
    if (files.size() != 1) {
      usage();
      return 2;
    }
    const davinci::json::Value doc =
        davinci::json::parse(read_file(files[0]));
    std::printf("%s", davinci::render_report(doc).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "davinci_prof: %s\n", e.what());
    return 2;
  }
}
