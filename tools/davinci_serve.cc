// davinci_serve: replays a pooling request trace through a serving
// session and reports throughput and latency (docs/SERVING.md).
//
//   davinci_serve <trace-file> [options]
//
// Options:
//   --sequential         disable batching (every request launches alone)
//   --devices=N          simulated devices behind the placement router
//                        (default 1; see docs/CLUSTER.md)
//   --placement=P        sharding axis: data (batch N) | model (C1)
//   --queue=N            admission-queue depth           (default 64)
//   --max-batch=N        requests per coalesced launch   (default 16)
//   --ub-waves=N         launch block cap, in waves      (default 4)
//   --plan-cache=N       plan-cache capacity             (default 64)
//   --no-double-buffer   single-buffered device schedule
//   --policy=P           overload policy: block | reject | shed
//   --deadline-us=N      default completion budget for trace lines that
//                        carry no deadline_us= field (0 = none)
//   --watchdog-us=N      hung-launch watchdog budget (0 = off)
//   --inject=SPEC        fault-plan spec (sim/fault.h grammar); routes
//                        every launch through Device::run_resilient
//   --seed=N             fault-plan seed                 (default 1)
//   --retries=N          per-block retry budget          (default 3)
//   --verify             CRC-verify stores (catches silent corruption)
//   --no-arena           disable the tensor arena (allocate-per-request
//                        baseline; results must be bit-identical)
//   --no-vm              disable the instruction-stream VM (per-batch
//                        serial device timing; outputs are bit-identical
//                        either way, only the cycle model changes)
//   --in-flight=N        VM in-flight launch window        (default 2)
//   --warmup=N           replay the first N requests once before the
//                        measured run (warm plan cache / arena), then
//                        reset the statistics and the wall clock
//   --chrome-trace=path  write the unified host+device Chrome trace
//                        (enables stream capture): the VM cross-batch
//                        launch tracks plus one "serve requests" row per
//                        traced request (queued / batching / execute) on
//                        the same cycle timeline
//   --stats-every-ms=N   live telemetry: while the measured replay runs,
//                        emit one JSON line every N ms (interval qps,
//                        latency p50/p99/p999, queue depth, failure
//                        counters, plan-cache hit rate, VM overlap,
//                        trace-ring drops; at --devices>1 also a
//                        per_device array with each device's launch /
//                        block counters, in-flight shard depth and
//                        interval launch rate); a final line always
//                        flushes at the end of the replay
//   --stats-out=path     write the telemetry lines to a file (default
//                        stdout)
//   --json=<path>        machine-readable report ({"bench","rows"}); the
//                        per-trace-line rows carry non-gated fields, the
//                        final "total" row carries the gated cycles sum
//                        so `davinci_prof --diff seq.json batched.json`
//                        gates batched-vs-sequential regressions; the
//                        total row also reports failed/expired/shed plus
//                        host_ms and the host-phase sums (host_alloc_ms /
//                        host_plan_ms / host_validate_ms /
//                        host_execute_ms), which only gate a diff under
//                        davinci_prof --include-host
//   --metrics=<path>     schema-v6 davinci.metrics JSON: one entry per
//                        trace line plus the session's "serve" object
//                        (VM "vm" sub-object, latency histograms and the
//                        "request_trace" ring counters)
//
// Exit codes: 0 success, 2 usage, 3 trace error, 4 any request failed
// (launch failure, expired deadline, or shed by the overload policy).
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/json.h"
#include "serve/session.h"
#include "serve/trace.h"
#include "sim/metrics_registry.h"
#include "sim/trace_export.h"
#include "tensor/arena.h"

using namespace davinci;

namespace {

std::string arg_value(int argc, char** argv, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, n) == 0) return argv[i] + n;
  }
  return "";
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::int64_t int_arg(int argc, char** argv, const char* prefix,
                     std::int64_t fallback) {
  const std::string v = arg_value(argc, argv, prefix);
  return v.empty() ? fallback : std::stoll(v);
}

std::string geom_string(const serve::TraceEntry& e) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%lldx%lldx%lldx%lldx16",
                static_cast<long long>(e.n), static_cast<long long>(e.c1),
                static_cast<long long>(e.ih), static_cast<long long>(e.iw));
  return buf;
}

int usage() {
  std::fprintf(stderr,
               "usage: davinci_serve <trace-file> [--sequential] "
               "[--devices=N] [--placement=data|model] "
               "[--queue=N] [--max-batch=N] [--ub-waves=N] [--plan-cache=N] "
               "[--no-double-buffer] [--policy=block|reject|shed] "
               "[--deadline-us=N] [--watchdog-us=N] [--inject=SPEC] "
               "[--seed=N] [--retries=N] [--verify] [--no-arena] "
               "[--no-vm] [--in-flight=N] [--warmup=N] "
               "[--chrome-trace=path] [--stats-every-ms=N] "
               "[--stats-out=path] [--json=path] [--metrics=path]\n");
  return 2;
}

// The live telemetry stream (--stats-every-ms): a sampler thread scrapes
// session.stats() every interval and appends one JSON line per snapshot.
// qps is the *interval* completion rate (delta completed / delta time);
// everything else is the cumulative value at sample time. finish()
// always emits one final line, so even a replay shorter than the
// interval yields a non-empty stream.
class StatsStream {
 public:
  void start(serve::Session* session, std::int64_t every_ms,
             const std::string& out_path) {
    session_ = session;
    if (!out_path.empty()) {
      out_ = std::fopen(out_path.c_str(), "wb");
      DV_CHECK(out_ != nullptr) << "cannot open " << out_path;
      owns_file_ = true;
    } else {
      out_ = stdout;
    }
    t0_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this, every_ms] {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_) {
        if (cv_.wait_for(lock, std::chrono::milliseconds(every_ms),
                         [this] { return stop_; })) {
          return;
        }
        lock.unlock();
        emit_line();
        lock.lock();
      }
    });
  }

  void finish() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    emit_line();
    if (owns_file_) std::fclose(out_);
    out_ = nullptr;
  }

 private:
  void emit_line() {
    const serve::SessionStats s = session_->stats();
    const double t_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0_)
                            .count();
    const double dt_s = (t_ms - last_t_ms_) / 1000.0;
    const double qps =
        dt_s > 0.0
            ? static_cast<double>(s.completed - last_completed_) / dt_s
            : 0.0;
    std::string j =
        "{\"t_ms\":" + json::number(t_ms) + ",\"qps\":" + json::number(qps) +
        ",\"completed\":" + std::to_string(s.completed) +
        ",\"p50_us\":" + json::number(s.latency.p50) +
        ",\"p99_us\":" + json::number(s.latency.p99) +
        ",\"p999_us\":" + json::number(s.latency.p999) +
        ",\"queue_depth\":" + std::to_string(s.queue_depth) +
        ",\"failed\":" + std::to_string(s.failed) +
        ",\"expired\":" + std::to_string(s.expired) +
        ",\"shed\":" + std::to_string(s.shed + s.rejected) +
        ",\"poisoned\":" + std::to_string(s.poisoned_requests) +
        ",\"plan_cache_hit_rate\":" + json::number(s.plan_cache.hit_rate()) +
        ",\"vm_overlap_cycles\":" + std::to_string(s.vm.overlap_cycles) +
        ",\"trace_dropped\":" + std::to_string(s.request_trace.dropped);
    if (s.devices > 1) {
      // Per-device telemetry so the live stream stays truthful under
      // sharding: queue_depth is shards dispatched to the device and not
      // yet completed, qps the device's interval shard-launch rate.
      if (last_device_launches_.size() !=
          static_cast<std::size_t>(s.devices)) {
        last_device_launches_.assign(static_cast<std::size_t>(s.devices), 0);
      }
      j += ",\"per_device\":[";
      for (std::size_t d = 0; d < s.cluster.devices.size(); ++d) {
        const serve::Cluster::DeviceStats& ds = s.cluster.devices[d];
        const double dqps =
            dt_s > 0.0 ? static_cast<double>(ds.launches -
                                             last_device_launches_[d]) /
                             dt_s
                       : 0.0;
        if (d > 0) j += ",";
        j += "{\"device\":" + std::to_string(d) +
             ",\"launches\":" + std::to_string(ds.launches) +
             ",\"blocks\":" + std::to_string(ds.blocks) +
             ",\"queue_depth\":" + std::to_string(ds.inflight_shards) +
             ",\"qps\":" + json::number(dqps) + "}";
        last_device_launches_[d] = ds.launches;
      }
      j += "]";
    }
    j += "}\n";
    std::fwrite(j.data(), 1, j.size(), out_);
    std::fflush(out_);
    last_completed_ = s.completed;
    last_t_ms_ = t_ms;
  }

  serve::Session* session_ = nullptr;
  std::FILE* out_ = nullptr;
  bool owns_file_ = false;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::chrono::steady_clock::time_point t0_;
  std::int64_t last_completed_ = 0;
  std::vector<std::int64_t> last_device_launches_;
  double last_t_ms_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return usage();
  const std::string trace_path = argv[1];
  if (has_flag(argc, argv, "--no-arena")) {
    TensorArena::global().set_enabled(false);
  }

  serve::ClusterOptions cluster_opts;
  cluster_opts.devices =
      static_cast<int>(int_arg(argc, argv, "--devices=", 1));
  if (cluster_opts.devices < 1) {
    std::fprintf(stderr, "davinci_serve: --devices must be >= 1\n");
    return usage();
  }
  const std::string placement = arg_value(argc, argv, "--placement=");
  if (placement == "model") {
    cluster_opts.placement = serve::Placement::kModel;
  } else if (!placement.empty() && placement != "data") {
    std::fprintf(stderr, "davinci_serve: unknown --placement '%s'\n",
                 placement.c_str());
    return usage();
  }

  serve::SessionOptions opts;
  opts.batching = !has_flag(argc, argv, "--sequential");
  opts.queue_depth = static_cast<std::size_t>(
      int_arg(argc, argv, "--queue=", 64));
  opts.max_batch = static_cast<std::size_t>(
      int_arg(argc, argv, "--max-batch=", 16));
  opts.ub_waves = static_cast<int>(int_arg(argc, argv, "--ub-waves=", 4));
  opts.plan_cache_capacity = static_cast<std::size_t>(
      int_arg(argc, argv, "--plan-cache=", 64));
  opts.double_buffer = !has_flag(argc, argv, "--no-double-buffer");
  opts.watchdog_timeout_us = int_arg(argc, argv, "--watchdog-us=", 0);
  const std::string policy = arg_value(argc, argv, "--policy=");
  if (policy == "reject") {
    opts.overload = serve::OverloadPolicy::kRejectNew;
  } else if (policy == "shed") {
    opts.overload = serve::OverloadPolicy::kShedOldest;
  } else if (!policy.empty() && policy != "block") {
    std::fprintf(stderr, "davinci_serve: unknown --policy '%s'\n",
                 policy.c_str());
    return usage();
  }
  const std::string inject = arg_value(argc, argv, "--inject=");
  if (!inject.empty() || has_flag(argc, argv, "--verify")) {
    ResilienceOptions res;
    try {
      res.plan = FaultPlan::parse(
          inject, static_cast<std::uint64_t>(
                      int_arg(argc, argv, "--seed=", 1)));
    } catch (const Error& e) {
      std::fprintf(stderr, "davinci_serve: bad --inject: %s\n", e.what());
      return usage();
    }
    res.max_retries = static_cast<int>(int_arg(argc, argv, "--retries=", 3));
    res.verify = has_flag(argc, argv, "--verify");
    opts.resilience = res;
  }
  const std::int64_t default_deadline_us =
      int_arg(argc, argv, "--deadline-us=", 0);
  const std::string json_path = arg_value(argc, argv, "--json=");
  const std::string metrics_path = arg_value(argc, argv, "--metrics=");
  const std::string chrome_trace_path =
      arg_value(argc, argv, "--chrome-trace=");
  const std::int64_t warmup = int_arg(argc, argv, "--warmup=", 0);
  const std::int64_t stats_every_ms =
      int_arg(argc, argv, "--stats-every-ms=", 0);
  const std::string stats_out = arg_value(argc, argv, "--stats-out=");
  opts.vm = !has_flag(argc, argv, "--no-vm");
  opts.vm_in_flight = static_cast<int>(int_arg(argc, argv, "--in-flight=", 2));
  opts.vm_capture = !chrome_trace_path.empty();

  std::vector<serve::TraceEntry> entries;
  try {
    entries = serve::load_trace(trace_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "davinci_serve: %s\n", e.what());
    return 3;
  }
  if (entries.empty()) {
    std::fprintf(stderr, "davinci_serve: trace '%s' contains no requests\n",
                 trace_path.c_str());
    return 3;
  }

  // Materialize every request up front so the replay loop measures the
  // serving path, not input generation.
  struct LineRuns {
    std::size_t entry = 0;
    std::vector<std::future<kernels::PoolResult>> futures;
  };
  std::vector<serve::MaterializedRequest> requests;
  std::vector<std::size_t> request_line;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (int r = 0; r < entries[i].repeat; ++r) {
      requests.push_back(
          serve::materialize(entries[i], i * 1000 + std::uint64_t(r)));
      request_line.push_back(i);
    }
  }

  serve::Session session(serve::Cluster(cluster_opts), opts);
  std::vector<LineRuns> lines(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) lines[i].entry = i;

  // Warmup: replay the first --warmup requests once so the measured run
  // starts with a warm plan cache and arena, then discard every counter
  // (including the VM stream clock) so the measured cycles are those of
  // the measured replay alone. Warmup failures are ignored on purpose --
  // they would double-count against the measured run's exit code.
  if (warmup > 0) {
    try {
      std::size_t window = 0;
      std::vector<std::future<kernels::PoolResult>> warm;
      session.pause();
      for (std::size_t r = 0;
           r < requests.size() && r < static_cast<std::size_t>(warmup); ++r) {
        const serve::TraceEntry& e = entries[request_line[r]];
        serve::SubmitOptions sub;
        sub.deadline_us =
            e.deadline_us > 0 ? e.deadline_us : default_deadline_us;
        sub.prio = e.prio;
        sub.shard = e.shard;
        warm.push_back(session.submit(e.op, requests[r].inputs(), sub));
        if (++window == static_cast<std::size_t>(opts.queue_depth)) {
          session.resume();
          session.drain();
          session.pause();
          window = 0;
        }
      }
      session.resume();
      session.drain();
      for (auto& f : warm) {
        try {
          f.get();
        } catch (const Error&) {
        }
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "davinci_serve: warmup failed: %s\n", e.what());
      return 4;
    }
    session.reset_stats();
  }

  // Replay in paused admission windows (at most queue_depth requests
  // each, so submit never blocks on a paused queue): the worker sees
  // each window all at once, which makes coalescing -- and therefore
  // the launch count and cycle totals -- deterministic run to run. The
  // CI host gate diffs cycles at zero tolerance on top of this.
  StatsStream stats_stream;
  if (stats_every_ms > 0) {
    stats_stream.start(&session, stats_every_ms, stats_out);
  }
  std::int64_t first_trace_id = -1, last_trace_id = -1;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    std::size_t window = 0;
    session.pause();
    for (std::size_t r = 0; r < requests.size(); ++r) {
      const serve::TraceEntry& e = entries[request_line[r]];
      serve::SubmitOptions sub;
      sub.deadline_us =
          e.deadline_us > 0 ? e.deadline_us : default_deadline_us;
      sub.prio = e.prio;
      sub.shard = e.shard;
      std::int64_t trace_id = -1;
      sub.trace_id = &trace_id;
      lines[request_line[r]].futures.push_back(
          session.submit(e.op, requests[r].inputs(), sub));
      if (first_trace_id < 0) first_trace_id = trace_id;
      last_trace_id = trace_id;
      if (++window == static_cast<std::size_t>(opts.queue_depth)) {
        session.resume();
        session.drain();
        session.pause();
        window = 0;
      }
    }
    session.resume();
    session.drain();
  } catch (const Error& e) {
    std::fprintf(stderr, "davinci_serve: submit failed: %s\n", e.what());
    return 4;
  }
  if (stats_every_ms > 0) stats_stream.finish();

  MetricsRegistry registry;
  std::printf("davinci_serve: %zu requests from %s (%s)\n", requests.size(),
              trace_path.c_str(), opts.batching ? "batched" : "sequential");
  std::printf("%-44s %-14s %9s %14s\n", "op", "geometry (NC1HWC0)",
              "requests", "launch-cycles");
  std::int64_t failed_requests = 0, expired_requests = 0, shed_requests = 0;
  std::int64_t host_alloc_ns = 0, host_plan_ns = 0, host_validate_ns = 0,
               host_execute_ns = 0;
  std::vector<std::int64_t> line_cycles(entries.size(), 0);
  for (LineRuns& line : lines) {
    const serve::TraceEntry& e = entries[line.entry];
    std::int64_t rep_cycles = 0;
    bool added = false;
    for (std::size_t f = 0; f < line.futures.size(); ++f) {
      try {
        kernels::PoolResult r = line.futures[f].get();
        host_alloc_ns += r.run.host_alloc_ns;
        host_plan_ns += r.run.host_plan_ns;
        host_validate_ns += r.run.host_validate_ns;
        host_execute_ns += r.run.host_execute_ns;
        if (!added) {
          rep_cycles = r.cycles();
          registry.add(e.op.to_string() + " " + geom_string(e), r.run,
                       session.device().arch());
          added = true;
        }
      } catch (const serve::DeadlineExceeded& err) {
        std::fprintf(stderr, "request expired (%s): %s\n",
                     e.op.to_string().c_str(), err.what());
        expired_requests += 1;
      } catch (const serve::Overloaded& err) {
        std::fprintf(stderr, "request shed (%s): %s\n",
                     e.op.to_string().c_str(), err.what());
        shed_requests += 1;
      } catch (const Error& err) {
        std::fprintf(stderr, "request failed (%s): %s\n",
                     e.op.to_string().c_str(), err.what());
        failed_requests += 1;
      }
    }
    line_cycles[line.entry] = rep_cycles;
    std::printf("%-44s %-14s %9zu %14lld\n", e.op.to_string().c_str(),
                geom_string(e).c_str(), line.futures.size(),
                static_cast<long long>(rep_cycles));
  }
  const double host_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  const serve::SessionStats s = session.stats();
  std::printf("\n");
  std::printf("requests      %lld completed, %lld failed, %lld expired, "
              "%lld shed/rejected\n",
              static_cast<long long>(s.completed),
              static_cast<long long>(s.failed),
              static_cast<long long>(s.expired),
              static_cast<long long>(s.shed + s.rejected));
  if (opts.resilience.has_value()) {
    std::printf("resilience    %lld degraded launches, %lld bisections, "
                "%lld poisoned requests, %d cores quarantined\n",
                static_cast<long long>(s.degraded_launches),
                static_cast<long long>(s.bisections),
                static_cast<long long>(s.poisoned_requests),
                s.quarantined_cores);
    std::printf("faults        %s\n", s.faults.summary().c_str());
  }
  if (opts.watchdog_timeout_us > 0) {
    std::printf("watchdog      %lld alarms (budget %lld us)\n",
                static_cast<long long>(s.watchdog_alarms),
                static_cast<long long>(opts.watchdog_timeout_us));
  }
  std::printf("launches      %lld (%lld coalesced batches, avg %.2f "
              "req/launch, max %zu)\n",
              static_cast<long long>(s.launches),
              static_cast<long long>(s.batches), s.avg_batch, s.max_batch);
  if (s.devices > 1) {
    std::printf("cluster       %d devices (%s placement), %lld sharded "
                "launches, redistribution %lld bytes / %lld cycles, busiest "
                "link %lld cycles\n",
                s.devices, serve::to_string(s.placement),
                static_cast<long long>(s.cluster.sharded_launches),
                static_cast<long long>(s.cluster.redistribution_bytes),
                static_cast<long long>(s.cluster.redistribution_cycles),
                static_cast<long long>(s.cluster.link_busy_cycles));
    for (std::size_t d = 0; d < s.cluster.devices.size(); ++d) {
      const serve::Cluster::DeviceStats& ds = s.cluster.devices[d];
      std::printf("  device %-4zu %lld launches, %lld blocks, %lld compute "
                  "cycles, vm makespan %lld\n",
                  d, static_cast<long long>(ds.launches),
                  static_cast<long long>(ds.blocks),
                  static_cast<long long>(ds.cycles),
                  static_cast<long long>(
                      d < s.vm_makespan_per_device.size()
                          ? s.vm_makespan_per_device[d]
                          : 0));
    }
  }
  std::printf("device cycles %lld total -> %.2f requests/Mcycle\n",
              static_cast<long long>(s.device_cycles_total),
              s.device_cycles_total > 0
                  ? 1e6 * static_cast<double>(s.completed) /
                        static_cast<double>(s.device_cycles_total)
                  : 0.0);
  if (opts.vm) {
    std::printf("vm            makespan %lld (serial sum %lld, overlap "
                "%lld cycles, %.1f%%), in-flight %d, stalls window %lld / "
                "hazard %lld\n",
                static_cast<long long>(s.vm.makespan),
                static_cast<long long>(s.vm.serial_sum),
                static_cast<long long>(s.vm.overlap_cycles),
                s.vm.serial_sum > 0
                    ? 100.0 * static_cast<double>(s.vm.overlap_cycles) /
                          static_cast<double>(s.vm.serial_sum)
                    : 0.0,
                s.vm.in_flight,
                static_cast<long long>(s.vm.window_stalls),
                static_cast<long long>(s.vm.hazard_stalls));
  }
  std::printf("plan cache    %lld hits / %lld misses (%.1f%%), %zu/%zu "
              "entries, %lld evictions\n",
              static_cast<long long>(s.plan_cache.hits),
              static_cast<long long>(s.plan_cache.misses),
              s.plan_cache.hit_rate() * 100.0, s.plan_cache_size,
              s.plan_cache_capacity,
              static_cast<long long>(s.plan_cache.evictions));
  std::printf("latency       p50 %.1fus p90 %.1fus p99 %.1fus p999 %.1fus "
              "max %.1fus (queue wait p50 %.1fus)\n",
              s.latency.p50, s.latency.p90, s.latency.p99, s.latency.p999,
              s.latency.max, s.queue_wait.p50);
  if (opts.request_trace_capacity > 0) {
    std::printf("trace         %lld lifecycle events (%lld dropped, ring "
                "capacity %lld), request ids %lld..%lld\n",
                static_cast<long long>(s.request_trace.recorded),
                static_cast<long long>(s.request_trace.dropped),
                static_cast<long long>(
                    static_cast<std::int64_t>(s.request_trace.capacity)),
                static_cast<long long>(first_trace_id),
                static_cast<long long>(last_trace_id));
  }
  std::printf("queue         peak depth %lld / %zu, %lld backpressure "
              "waits\n",
              static_cast<long long>(s.peak_queue_depth), opts.queue_depth,
              static_cast<long long>(s.backpressure_waits));
  std::printf("host          %.1f ms wall -> %.0f requests/s\n", host_ms,
              host_ms > 0.0
                  ? 1000.0 * static_cast<double>(s.completed) / host_ms
                  : 0.0);
  std::printf("host phases   alloc %.2fms, plan %.2fms, validate %.2fms, "
              "execute %.2fms (per-request attribution)\n",
              static_cast<double>(host_alloc_ns) / 1e6,
              static_cast<double>(host_plan_ns) / 1e6,
              static_cast<double>(host_validate_ns) / 1e6,
              static_cast<double>(host_execute_ns) / 1e6);

  if (!json_path.empty()) {
    // Hand-rolled report in the bench {"bench","rows"} shape: per-line
    // rows use non-gated keys (a coalesced launch is legitimately longer
    // than a single-request one); only the "total" row carries the gated
    // cycle sum.
    std::string j = "{\"bench\":\"davinci_serve\",\"rows\":[\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const serve::TraceEntry& e = entries[i];
      j += "{\"name\":\"" + e.op.to_string() + " " + geom_string(e) +
           "\",\"requests\":" + std::to_string(lines[i].futures.size()) +
           ",\"launch_cycles\":" + std::to_string(line_cycles[i]) + "},\n";
    }
    // json::number, not snprintf("%.4f"): the latter consults LC_NUMERIC
    // and writes ',' decimals under comma-decimal locales -- invalid JSON.
    // With the VM on, the gated "cycles" metric IS the cluster makespan:
    // the max of the busiest device's cross-batch overlapped makespan
    // and the busiest link's busy time -- the quantity the serving path
    // actually spends on the cluster (identical to the single VM
    // makespan at --devices=1, so the 1-device baselines are unchanged);
    // the plain per-launch sum stays visible as the non-gated
    // "cycles_sum".
    const std::int64_t gated_cycles =
        opts.vm ? s.cluster_makespan : s.device_cycles_total;
    j += "{\"name\":\"total\",\"requests\":" + std::to_string(s.completed) +
         ",\"cycles\":" + std::to_string(gated_cycles) +
         ",\"cycles_sum\":" + std::to_string(s.device_cycles_total) +
         ",\"devices\":" + std::to_string(s.devices) +
         ",\"placement\":\"" + serve::to_string(s.placement) + "\"" +
         ",\"sharded_launches\":" +
         std::to_string(s.cluster.sharded_launches) +
         ",\"redistribution_bytes\":" +
         std::to_string(s.cluster.redistribution_bytes) +
         ",\"redistribution_cycles\":" +
         std::to_string(s.cluster.redistribution_cycles) +
         ",\"link_busy_cycles\":" +
         std::to_string(s.cluster.link_busy_cycles) +
         ",\"vm\":" + (opts.vm ? std::string("true") : std::string("false")) +
         ",\"in_flight\":" + std::to_string(s.vm.in_flight) +
         ",\"overlap_cycles\":" + std::to_string(s.vm.overlap_cycles) +
         ",\"window_stalls\":" + std::to_string(s.vm.window_stalls) +
         ",\"hazard_stalls\":" + std::to_string(s.vm.hazard_stalls) +
         ",\"launches\":" + std::to_string(s.launches) +
         ",\"failed\":" + std::to_string(s.failed) +
         ",\"expired\":" + std::to_string(s.expired) +
         ",\"shed\":" + std::to_string(s.shed + s.rejected) +
         ",\"batched\":" + (opts.batching ? std::string("true")
                                          : std::string("false")) +
         ",\"avg_batch\":" + json::number(s.avg_batch) +
         ",\"plan_cache_hit_rate\":" + json::number(s.plan_cache.hit_rate()) +
         ",\"host_ms\":" + json::number(host_ms) +
         ",\"host_alloc_ms\":" +
         json::number(static_cast<double>(host_alloc_ns) / 1e6) +
         ",\"host_plan_ms\":" +
         json::number(static_cast<double>(host_plan_ns) / 1e6) +
         ",\"host_validate_ms\":" +
         json::number(static_cast<double>(host_validate_ns) / 1e6) +
         ",\"host_execute_ms\":" +
         json::number(static_cast<double>(host_execute_ns) / 1e6) +
         "}\n]}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 4;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("json: wrote %s\n", json_path.c_str());
  }
  if (!metrics_path.empty()) {
    session.add_metrics(registry);
    registry.write(metrics_path);
  }
  if (!chrome_trace_path.empty()) {
    // One file, two layers: the VM's per-launch device tracks plus one
    // "serve requests" row per traced request on the same timeline.
    session.write_unified_chrome_trace(chrome_trace_path);
    std::printf("chrome-trace: wrote %s (%zu placed launches, %lld request "
                "events)\n",
                chrome_trace_path.c_str(),
                session.vm_stream().placements().size(),
                static_cast<long long>(s.request_trace.recorded));
  }
  return (failed_requests + expired_requests + shed_requests) > 0 ? 4 : 0;
}
