// Command-line driver: run any pooling configuration on the simulated
// device, verify it against the reference, and print cycles, per-pipe
// breakdown and (optionally) the instruction trace.
//
//   davinci_pool_cli --op=maxpool --impl=im2col --h=71 --w=71 --c=192
//                    --k=3 --s=2 [--pad=1] [--trace] [--compare]
//                    [--no-double-buffer] [--profile=<out.json>]
//                    [--metrics=<out.json>]
//                    [--inject=<spec>] [--retries=N] [--seed=S]
//
//   --op       maxpool | maxpool_mask | maxpool_bwd | avgpool |
//              avgpool_bwd | minpool | global_avgpool
//   --impl     direct | im2col | expansion | xysplit   (forward ops)
//              vadd | col2im                           (backward ops)
//   --compare  also run the baseline implementation and print the speedup
//   --trace    print the first instructions executed on core 0
//   --no-double-buffer  run the legacy serial single-buffer schedule
//              (device cycles then equal the serial cycle count)
//   --profile  record the instruction timeline of every core and write it
//              as Chrome trace_event JSON, viewable in chrome://tracing or
//              https://ui.perfetto.dev (see docs/PROFILING.md); with
//              --compare the file contains both runs back to back
//   --metrics  write the versioned cycle-attribution / roofline metrics
//              JSON (davinci.metrics schema, one entry per reported run;
//              render or diff it with davinci_prof -- see
//              docs/OBSERVABILITY.md)
//
// Fault injection (see docs/RESILIENCE.md for the full grammar):
//   --inject   comma-separated fault spec, e.g.
//              core_fail@2,bitflip:ub:1e-6 -- runs every kernel through
//              Device::run_resilient and prints a fault report. Output
//              verification by redundant execution is enabled
//              automatically when the plan contains silent-corruption
//              sites.
//   --retries  per-block retry allowance (default 3)
//   --seed     fault-stream seed (default 0); same spec + seed replays
//              the same faults
//
// Exit codes:
//   0  success (device output bit-exact against the reference)
//   2  usage error (unknown flag/op/impl, malformed --inject spec)
//   3  verification mismatch (device output differs from the reference)
//   4  execution error (unschedulable tiling, kernel failure, ...)
//   5  retry budget exhausted under fault injection (RetryExhausted)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/metrics_registry.h"
#include "sim/trace_export.h"
#include "tensor/fractal.h"

using namespace davinci;

namespace {

struct Options {
  std::string op = "maxpool";
  std::string impl = "im2col";
  std::int64_t h = 35, w = 35, c = 288, k = 3, s = 2, pad = 0;
  std::string inject;
  std::string profile;
  std::string metrics;
  std::int64_t retries = 3;
  std::int64_t seed = 0;
  bool trace = false;
  bool compare = false;
  bool no_double_buffer = false;
};

bool parse_int(const char* arg, const char* name, std::int64_t* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  *out = std::atoll(arg + n);
  return true;
}

bool parse_str(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  *out = arg + n;
  return true;
}

akg::PoolImpl parse_impl(const std::string& s) {
  if (s == "direct") return akg::PoolImpl::kDirect;
  if (s == "im2col") return akg::PoolImpl::kIm2col;
  if (s == "expansion") return akg::PoolImpl::kExpansion;
  if (s == "xysplit") return akg::PoolImpl::kXYSplit;
  std::fprintf(stderr, "unknown --impl=%s\n", s.c_str());
  std::exit(2);
}

void report(const char* what, const Device::RunResult& run, bool show_faults,
            const ArchConfig& arch) {
  std::printf("%-14s %10lld cycles  (serial %lld, pipelined bound %lld)\n",
              what, static_cast<long long>(run.device_cycles),
              static_cast<long long>(run.device_cycles_serial),
              static_cast<long long>(run.device_cycles_pipelined));
  std::printf("  %s\n", run.aggregate.summary().c_str());
  std::printf("  occupancy: %s\n", run.profile.summary().c_str());
  const Roofline roof = compute_roofline(run.aggregate, arch,
                                         run.device_cycles, run.cores_used);
  std::printf("  roofline: %s (arith intensity %.3g vs balance %.3g; "
              "%.3g of %lld GM bytes/cycle/core)\n",
              roof.klass(), roof.arithmetic_intensity, roof.machine_balance,
              roof.achieved_gm_bytes_per_cycle,
              static_cast<long long>(arch.peak_mte_bytes_per_cycle));
  std::printf("  cores used: %d\n", run.cores_used);
  if (show_faults) {
    std::printf("  fault report: %s\n", run.faults.summary().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (parse_str(a, "--op=", &opt.op) || parse_str(a, "--impl=", &opt.impl) ||
        parse_int(a, "--h=", &opt.h) || parse_int(a, "--w=", &opt.w) ||
        parse_int(a, "--c=", &opt.c) || parse_int(a, "--k=", &opt.k) ||
        parse_int(a, "--s=", &opt.s) || parse_int(a, "--pad=", &opt.pad) ||
        parse_str(a, "--inject=", &opt.inject) ||
        parse_str(a, "--profile=", &opt.profile) ||
        parse_str(a, "--metrics=", &opt.metrics) ||
        parse_int(a, "--retries=", &opt.retries) ||
        parse_int(a, "--seed=", &opt.seed)) {
      continue;
    }
    if (std::strcmp(a, "--trace") == 0) {
      opt.trace = true;
    } else if (std::strcmp(a, "--compare") == 0) {
      opt.compare = true;
    } else if (std::strcmp(a, "--no-double-buffer") == 0) {
      opt.no_double_buffer = true;
    } else {
      std::fprintf(stderr, "unknown argument %s (see header comment)\n", a);
      return 2;
    }
  }

  Window2d window = Window2d::pool(opt.k, opt.s);
  window.pt = window.pb = window.pl = window.pr = opt.pad;
  const std::int64_t c1 = c1_of(opt.c);
  TensorF16 in(Shape{1, c1, opt.h, opt.w, kC0});
  in.fill_random_ints(1);

  Device dev;
  dev.set_double_buffer(!opt.no_double_buffer);
  if (opt.trace) dev.core(0).trace().enable();
  if (!opt.profile.empty()) {
    // The Chrome-trace export needs every core's instruction stream.
    for (int c = 0; c < dev.num_cores(); ++c) dev.core(c).trace().enable();
  }

  const bool injecting = !opt.inject.empty();
  if (injecting) {
    ResilienceOptions ropts;
    try {
      ropts.plan = FaultPlan::parse(
          opt.inject, static_cast<std::uint64_t>(opt.seed));
    } catch (const Error& e) {
      std::fprintf(stderr, "bad --inject spec: %s\n", e.what());
      return 2;
    }
    if (opt.retries < 0) {
      std::fprintf(stderr, "--retries must be >= 0\n");
      return 2;
    }
    ropts.max_retries = static_cast<int>(opt.retries);
    ropts.verify = ropts.plan.has_silent_sites();
    dev.set_resilience(ropts);
    std::printf("fault injection: %s  (retries=%lld, verify=%s)\n",
                ropts.plan.to_string().c_str(),
                static_cast<long long>(opt.retries),
                ropts.verify ? "on" : "off");
  }

  std::printf("op=%s input=%lldx%lldx%lld %s\n", opt.op.c_str(),
              static_cast<long long>(opt.h), static_cast<long long>(opt.w),
              static_cast<long long>(opt.c), window.to_string().c_str());

  // Every reported run also lands in the metrics registry when
  // --metrics=<path> was given (written after verification below).
  MetricsRegistry metrics;
  auto note = [&](const char* what, const Device::RunResult& run) {
    report(what, run, injecting, dev.arch());
    if (!opt.metrics.empty()) metrics.add(what, run, dev.arch());
  };

  bool ok = true;
  try {
    if (opt.op == "maxpool" || opt.op == "avgpool" || opt.op == "minpool") {
      const akg::PoolImpl impl = parse_impl(opt.impl);
      auto run_op = [&](akg::PoolImpl i) {
        const kernels::PoolOpKind kind =
            opt.op == "avgpool"
                ? kernels::PoolOpKind::kAvgFwd
                : (opt.op == "minpool" ? kernels::PoolOpKind::kMinFwd
                                       : kernels::PoolOpKind::kMaxFwd);
        return kernels::run_pool(
            dev, {.kind = kind, .window = window, .fwd = i}, {.in = &in});
      };
      auto r = run_op(impl);
      const TensorF16 want = opt.op == "avgpool"
                                 ? ref::avgpool_fwd(in, window)
                                 : (opt.op == "minpool"
                                        ? ref::minpool_fwd(in, window)
                                        : ref::maxpool_fwd(in, window));
      for (std::int64_t i = 0; i < want.size(); ++i) {
        ok &= r.out.flat(i) == want.flat(i);
      }
      note(opt.impl.c_str(), r.run);
      if (opt.compare) {
        auto base = run_op(akg::PoolImpl::kDirect);
        note("direct", base.run);
        std::printf("speedup: %.2fx\n",
                    static_cast<double>(base.cycles()) /
                        static_cast<double>(r.cycles()));
      }
    } else if (opt.op == "maxpool_mask") {
      auto r = kernels::run_pool(dev,
                                 {.kind = kernels::PoolOpKind::kMaxMaskFwd,
                                  .window = window,
                                  .fwd = parse_impl(opt.impl)},
                                 {.in = &in});
      const TensorF16 want = ref::maxpool_fwd(in, window);
      for (std::int64_t i = 0; i < want.size(); ++i) {
        ok &= r.out.flat(i) == want.flat(i);
      }
      note(opt.impl.c_str(), r.run);
    } else if (opt.op == "maxpool_bwd" || opt.op == "avgpool_bwd") {
      const kernels::MergeImpl merge = opt.impl == "vadd"
                                           ? kernels::MergeImpl::kVadd
                                           : kernels::MergeImpl::kCol2im;
      TensorF16 grad(
          Shape{1, c1, window.out_h(opt.h), window.out_w(opt.w), kC0});
      grad.fill_random_ints(2, 0, 5);
      if (opt.op == "maxpool_bwd") {
        const TensorF16 mask = ref::maxpool_argmax_mask(in, window);
        const kernels::PoolInputs bwd_in{
            .mask = &mask, .grad = &grad, .ih = opt.h, .iw = opt.w};
        auto r = kernels::run_pool(dev,
                                   {.kind = kernels::PoolOpKind::kMaxBwd,
                                    .window = window,
                                    .merge = merge},
                                   bwd_in);
        const TensorF16 want =
            ref::maxpool_bwd(mask, grad, window, opt.h, opt.w);
        for (std::int64_t i = 0; i < want.size(); ++i) {
          ok &= r.grad_in.flat(i) == want.flat(i);
        }
        note(kernels::to_string(merge), r.run);
        if (opt.compare) {
          auto base = kernels::run_pool(
              dev,
              {.kind = kernels::PoolOpKind::kMaxBwd,
               .window = window,
               .merge = kernels::MergeImpl::kVadd},
              bwd_in);
          note("vadd", base.run);
          std::printf("speedup: %.2fx\n",
                      static_cast<double>(base.cycles()) /
                          static_cast<double>(r.cycles()));
        }
      } else {
        auto r = kernels::run_pool(
            dev,
            {.kind = kernels::PoolOpKind::kAvgBwd,
             .window = window,
             .merge = merge},
            {.grad = &grad, .ih = opt.h, .iw = opt.w});
        const TensorF16 want = ref::avgpool_bwd(grad, window, opt.h, opt.w);
        for (std::int64_t i = 0; i < want.size(); ++i) {
          ok &= r.grad_in.flat(i) == want.flat(i);
        }
        note(kernels::to_string(merge), r.run);
      }
    } else if (opt.op == "global_avgpool") {
      auto r = kernels::run_pool(
          dev, {.kind = kernels::PoolOpKind::kGlobalAvg}, {.in = &in});
      const TensorF16 want = ref::global_avgpool(in);
      for (std::int64_t i = 0; i < want.size(); ++i) {
        ok &= r.out.flat(i) == want.flat(i);
      }
      note("global", r.run);
    } else {
      std::fprintf(stderr, "unknown --op=%s\n", opt.op.c_str());
      return 2;
    }
  } catch (const RetryExhausted& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 5;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  }

  std::printf("verification: %s\n", ok ? "bit-exact" : "MISMATCH");
  if (!opt.metrics.empty()) {
    try {
      metrics.write(opt.metrics);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 4;
    }
  }
  if (!opt.profile.empty()) {
    try {
      write_chrome_trace(opt.profile, dev);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 4;
    }
    std::printf("profile: wrote Chrome trace to %s (open in chrome://tracing "
                "or ui.perfetto.dev)\n", opt.profile.c_str());
  }
  if (opt.trace) {
    std::printf("\ncore 0 instruction trace (first 48):\n%s",
                dev.core(0).trace().to_string(48).c_str());
  }
  return ok ? 0 : 3;
}
