// davinci_tracegen: emits a seeded synthetic serving trace
// (serve/tracegen.h) in the davinci_serve line format.
//
//   davinci_tracegen [options]
//
// Options:
//   --requests=N           expanded request total        (default 256)
//   --seed=N               PRNG seed                     (default 1)
//   --hot-fraction=F       hot-set draw probability      (default 0.8)
//   --hot-shapes=N         hot-set size                  (default 3)
//   --burst=F              mean Poisson burst length     (default 3.0)
//   --backward-fraction=F  backward-op burst fraction    (default 0.2)
//   --deadline-us=N        deadline budget, 0 = none     (default 0)
//   --deadline-fraction=F  fraction carrying a deadline  (default 0)
//   --max-n=N              batch-axis size per request, uniform [1, N]
//                          (default 4)
//   --out=path             write the trace to a file (default stdout)
//
// The same flags and seed always produce byte-identical output, so a
// generated trace can be replayed at several --devices counts and the
// runs compared request-for-request (the CI cluster smoke gate).
//
// Exit codes: 0 success, 2 usage/bad flag.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "common/check.h"
#include "serve/tracegen.h"

using namespace davinci;

namespace {

std::string arg_value(int argc, char** argv, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, n) == 0) return argv[i] + n;
  }
  return "";
}

std::int64_t int_arg(int argc, char** argv, const char* prefix,
                     std::int64_t fallback) {
  const std::string v = arg_value(argc, argv, prefix);
  return v.empty() ? fallback : std::stoll(v);
}

double double_arg(int argc, char** argv, const char* prefix,
                  double fallback) {
  const std::string v = arg_value(argc, argv, prefix);
  return v.empty() ? fallback : std::stod(v);
}

int usage() {
  std::fprintf(stderr,
               "usage: davinci_tracegen [--requests=N] [--seed=N] "
               "[--hot-fraction=F] [--hot-shapes=N] [--burst=F] "
               "[--backward-fraction=F] [--deadline-us=N] "
               "[--deadline-fraction=F] [--max-n=N] [--out=path]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
  }
  serve::TracegenOptions opts;
  std::string out_path;
  try {
    opts.requests = static_cast<int>(int_arg(argc, argv, "--requests=",
                                             opts.requests));
    opts.seed = static_cast<std::uint64_t>(
        int_arg(argc, argv, "--seed=", static_cast<std::int64_t>(opts.seed)));
    opts.hot_fraction =
        double_arg(argc, argv, "--hot-fraction=", opts.hot_fraction);
    opts.hot_shapes = static_cast<int>(
        int_arg(argc, argv, "--hot-shapes=", opts.hot_shapes));
    opts.burst_mean = double_arg(argc, argv, "--burst=", opts.burst_mean);
    opts.backward_fraction = double_arg(argc, argv, "--backward-fraction=",
                                        opts.backward_fraction);
    opts.deadline_us = int_arg(argc, argv, "--deadline-us=", opts.deadline_us);
    opts.deadline_fraction = double_arg(argc, argv, "--deadline-fraction=",
                                        opts.deadline_fraction);
    opts.max_n = int_arg(argc, argv, "--max-n=", opts.max_n);
    out_path = arg_value(argc, argv, "--out=");

    const std::string text = serve::trace_text(serve::generate_trace(opts));
    if (out_path.empty()) {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      std::FILE* f = std::fopen(out_path.c_str(), "wb");
      DV_CHECK(f != nullptr) << "cannot open " << out_path;
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "davinci_tracegen: %s\n", e.what());
    return 2;
  }
  return 0;
}
